//! N-way replication for far memory.
//!
//! The straightforward half of the paper's fault-tolerance discussion
//! (Challenge 8(3)): keep full copies of a region on devices in distinct
//! failure domains. Writes pay N× write amplification; reads go to the
//! nearest live replica; losing a replica triggers re-replication from a
//! survivor. The erasure-coded alternative lives in [`crate::stripe`];
//! experiment E12 compares the two, reproducing the Carbink trade-off.

use disagg_hwsim::contention::{BandwidthLedger, ResourceKey};
use disagg_hwsim::fault::FaultInjector;
use disagg_hwsim::ids::{ComputeId, MemDeviceId};
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;
use disagg_region::pool::RegionId;
use disagg_region::props::PropertySet;
use disagg_region::region::{OwnerId, RegionManager};
use disagg_region::typed::RegionType;

use crate::FtolError;

/// A region kept as N full replicas in distinct failure domains.
#[derive(Debug, Clone)]
pub struct ReplicatedRegion {
    /// The replica regions (all the same size).
    pub replicas: Vec<RegionId>,
    /// The devices backing each replica.
    pub devs: Vec<MemDeviceId>,
    /// Logical size in bytes.
    pub size: u64,
    /// The owner all replicas belong to.
    pub owner: OwnerId,
    /// Total bytes written including amplification (stats).
    pub bytes_written: u64,
}

impl ReplicatedRegion {
    /// Creates an N-way replicated region across the given devices, which
    /// must live on pairwise distinct nodes.
    pub fn create(
        mgr: &mut RegionManager,
        topo: &Topology,
        devices: &[MemDeviceId],
        size: u64,
        owner: OwnerId,
        now: SimTime,
    ) -> Result<ReplicatedRegion, FtolError> {
        if devices.len() < 2 {
            return Err(FtolError::NotEnoughDevices {
                have: devices.len(),
                need: 2,
            });
        }
        for (i, &a) in devices.iter().enumerate() {
            for &b in &devices[i + 1..] {
                if topo.node_of_mem(a) == topo.node_of_mem(b) {
                    return Err(FtolError::SharedFailureDomain(a, b));
                }
            }
        }
        let mut replicas = Vec::with_capacity(devices.len());
        for &dev in devices {
            let id = mgr.alloc(
                dev,
                size,
                RegionType::GlobalScratch,
                PropertySet::new().with_mode(disagg_region::props::AccessMode::Async),
                owner,
                now,
            )?;
            replicas.push(id);
        }
        Ok(ReplicatedRegion {
            replicas,
            devs: devices.to_vec(),
            size,
            owner,
            bytes_written: 0,
        })
    }

    /// Storage overhead factor (N for N replicas).
    pub fn overhead(&self) -> f64 {
        self.replicas.len() as f64
    }

    /// Indices of replicas whose device and node are alive at `t`.
    pub fn alive(&self, topo: &Topology, faults: &FaultInjector, t: SimTime) -> Vec<usize> {
        (0..self.devs.len())
            .filter(|&i| {
                let dev = self.devs[i];
                !faults.device_failed(dev, t) && !faults.node_down(topo.node_of_mem(dev), t)
            })
            .collect()
    }

    /// Writes to *all* live replicas (replication writes are mirrored).
    /// The write completes when the slowest replica acknowledges; total
    /// bytes written are amplified N×.
    #[allow(clippy::too_many_arguments)]
    pub fn write(
        &mut self,
        mgr: &mut RegionManager,
        topo: &Topology,
        ledger: &mut BandwidthLedger,
        faults: &FaultInjector,
        offset: u64,
        data: &[u8],
        now: SimTime,
    ) -> Result<SimDuration, FtolError> {
        let alive = self.alive(topo, faults, now);
        if alive.is_empty() {
            return Err(FtolError::AllReplicasDown);
        }
        let mut slowest = SimDuration::ZERO;
        for &i in &alive {
            mgr.write(self.replicas[i], self.owner, offset, data)?;
            let dev = self.devs[i];
            let model = topo.mem(dev);
            let eff = model.effective_bytes(data.len() as u64) as f64;
            let start = now + SimDuration::from_nanos_f64(model.write_lat_ns);
            let fin = ledger.reserve(ResourceKey::Mem(dev), start, eff, model.write_bw_bpns);
            slowest = slowest.max(fin - now);
            self.bytes_written += data.len() as u64;
        }
        Ok(slowest)
    }

    /// True if replica `i`'s bytes for the window `[offset,
    /// offset + len)` overlap a corrupted range on its device at `t` —
    /// the replica is alive but its answer would fail the checksum.
    fn tainted(
        &self,
        mgr: &RegionManager,
        faults: &FaultInjector,
        i: usize,
        offset: u64,
        len: u64,
        t: SimTime,
    ) -> bool {
        let Ok(p) = mgr.placement(self.replicas[i]) else {
            return false;
        };
        let lo = p.offset + offset;
        let hi = lo + len;
        faults
            .corrupted_ranges(p.dev, t)
            .iter()
            .any(|&(o, l)| o < hi && lo < o + l)
    }

    /// Reads from the live replica nearest to `compute`, failing over
    /// past replicas whose window is corrupted (when every live replica
    /// is corrupted, the nearest one serves anyway and the caller's
    /// checksum layer must repair). Returns the duration and the
    /// replica index used.
    #[allow(clippy::too_many_arguments)]
    pub fn read(
        &self,
        mgr: &RegionManager,
        topo: &Topology,
        ledger: &mut BandwidthLedger,
        faults: &FaultInjector,
        compute: ComputeId,
        offset: u64,
        buf: &mut [u8],
        now: SimTime,
    ) -> Result<(SimDuration, usize), FtolError> {
        let alive = self.alive(topo, faults, now);
        let clean: Vec<usize> = alive
            .iter()
            .copied()
            .filter(|&i| !self.tainted(mgr, faults, i, offset, buf.len() as u64, now))
            .collect();
        let candidates = if clean.is_empty() { &alive } else { &clean };
        // Nearest = lowest path latency from the reader.
        let best = candidates
            .iter()
            .copied()
            .filter_map(|i| topo.path(compute, self.devs[i]).map(|p| (i, p.latency_ns)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .ok_or(FtolError::AllReplicasDown)?;
        mgr.read(self.replicas[best], self.owner, offset, buf)?;
        let dev = self.devs[best];
        let model = topo.mem(dev);
        let path = topo.path(compute, dev).expect("filtered to reachable");
        let eff = model.effective_bytes(buf.len() as u64) as f64;
        let start =
            now + SimDuration::from_nanos_f64(model.read_lat_ns + path.latency_ns);
        let fin = ledger.reserve(
            ResourceKey::Mem(dev),
            start,
            eff,
            model.read_bw_bpns.min(path.bandwidth_bpns),
        );
        Ok((fin - now, best))
    }

    /// Re-creates a lost replica on `spare` by copying from the first live
    /// survivor. Returns the recovery duration.
    #[allow(clippy::too_many_arguments)]
    pub fn recover(
        &mut self,
        mgr: &mut RegionManager,
        topo: &Topology,
        ledger: &mut BandwidthLedger,
        faults: &FaultInjector,
        lost: usize,
        spare: MemDeviceId,
        now: SimTime,
    ) -> Result<SimDuration, FtolError> {
        let alive = self.alive(topo, faults, now);
        let src = *alive.first().ok_or(FtolError::AllReplicasDown)?;
        if alive.contains(&lost) {
            return Err(FtolError::ReplicaNotLost(lost));
        }
        // Allocate the new replica and copy the survivor's bytes.
        let new = mgr.alloc(
            spare,
            self.size,
            RegionType::GlobalScratch,
            PropertySet::new().with_mode(disagg_region::props::AccessMode::Async),
            self.owner,
            now,
        )?;
        let data = mgr.bytes(self.replicas[src], self.owner)?.to_vec();
        mgr.write(new, self.owner, 0, &data)?;
        // The old replica's backing is gone with its device; drop our
        // handle without double-freeing if the pool still tracks it.
        let _ = mgr.release(self.replicas[lost], self.owner);
        self.replicas[lost] = new;
        let old_dev = self.devs[lost];
        self.devs[lost] = spare;
        let _ = old_dev;

        let base = topo
            .transfer_cost(self.devs[src], spare, self.size)
            .ok_or(FtolError::Unreachable(self.devs[src], spare))?;
        let f1 = ledger.reserve(
            ResourceKey::Mem(self.devs[src]),
            now,
            self.size as f64,
            topo.mem(self.devs[src]).read_bw_bpns,
        );
        let f2 = ledger.reserve(
            ResourceKey::Mem(spare),
            now,
            self.size as f64,
            topo.mem(spare).write_bw_bpns,
        );
        self.bytes_written += self.size;
        Ok(base.max(f1.max(f2) - now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::fault::FaultKind;
    use disagg_hwsim::presets::disaggregated_rack;

    const OWNER: OwnerId = OwnerId::App;

    fn fixture() -> (
        Topology,
        RegionManager,
        BandwidthLedger,
        Vec<MemDeviceId>,
        Vec<disagg_hwsim::ids::ComputeId>,
    ) {
        let (topo, rack) = disaggregated_rack(2, 32, 3, 64);
        let mgr = RegionManager::new(&topo);
        (
            topo,
            mgr,
            BandwidthLedger::default_buckets(),
            rack.pool.clone(),
            rack.cpus.clone(),
        )
    }

    #[test]
    fn create_requires_distinct_failure_domains() {
        let (topo, mut mgr, _, pool, _) = fixture();
        let err =
            ReplicatedRegion::create(&mut mgr, &topo, &[pool[0], pool[0]], 1024, OWNER, SimTime::ZERO)
                .unwrap_err();
        assert!(matches!(err, FtolError::SharedFailureDomain(_, _)));
        let err = ReplicatedRegion::create(&mut mgr, &topo, &[pool[0]], 1024, OWNER, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, FtolError::NotEnoughDevices { .. }));
        assert!(
            ReplicatedRegion::create(&mut mgr, &topo, &[pool[0], pool[1]], 1024, OWNER, SimTime::ZERO)
                .is_ok()
        );
    }

    #[test]
    fn writes_mirror_to_all_replicas() {
        let (topo, mut mgr, mut ledger, pool, _) = fixture();
        let faults = FaultInjector::none();
        let mut rr =
            ReplicatedRegion::create(&mut mgr, &topo, &[pool[0], pool[1]], 1024, OWNER, SimTime::ZERO)
                .unwrap();
        rr.write(&mut mgr, &topo, &mut ledger, &faults, 0, &[7u8; 512], SimTime::ZERO)
            .unwrap();
        assert_eq!(rr.bytes_written, 1024, "2x write amplification");
        for &r in &rr.replicas {
            assert_eq!(&mgr.bytes(r, OWNER).unwrap()[..512], &[7u8; 512]);
        }
        assert_eq!(rr.overhead(), 2.0);
    }

    #[test]
    fn read_prefers_the_nearest_replica_and_survives_crashes() {
        let (topo, mut mgr, mut ledger, pool, cpus) = fixture();
        let mut rr =
            ReplicatedRegion::create(&mut mgr, &topo, &[pool[0], pool[1]], 4096, OWNER, SimTime::ZERO)
                .unwrap();
        let faults = FaultInjector::none();
        rr.write(&mut mgr, &topo, &mut ledger, &faults, 0, &[9u8; 4096], SimTime::ZERO)
            .unwrap();

        let mut buf = [0u8; 64];
        let (_, used) = rr
            .read(&mgr, &topo, &mut ledger, &faults, cpus[0], 0, &mut buf, SimTime::ZERO)
            .unwrap();
        assert_eq!(buf, [9u8; 64]);

        // Crash the node of the replica that served the read: the other
        // replica takes over.
        let crashed_node = topo.node_of_mem(rr.devs[used]);
        let faults = FaultInjector::with_events(vec![disagg_hwsim::fault::FaultEvent {
            at: SimTime(10),
            kind: FaultKind::NodeCrash(crashed_node),
        }]);
        let (_, used2) = rr
            .read(&mgr, &topo, &mut ledger, &faults, cpus[0], 0, &mut buf, SimTime(100))
            .unwrap();
        assert_ne!(used, used2);
        assert_eq!(buf, [9u8; 64]);
    }

    #[test]
    fn corrupted_replica_fails_over_to_a_clean_one() {
        let (topo, mut mgr, mut ledger, pool, cpus) = fixture();
        let mut rr =
            ReplicatedRegion::create(&mut mgr, &topo, &[pool[0], pool[1]], 4096, OWNER, SimTime::ZERO)
                .unwrap();
        let none = FaultInjector::none();
        rr.write(&mut mgr, &topo, &mut ledger, &none, 0, &[3u8; 4096], SimTime::ZERO)
            .unwrap();
        let mut buf = [0u8; 64];
        let (_, nearest) = rr
            .read(&mgr, &topo, &mut ledger, &none, cpus[0], 0, &mut buf, SimTime::ZERO)
            .unwrap();

        // Corrupt the read window on the nearest replica: the read must
        // fail over to the clean one.
        let p = mgr.placement(rr.replicas[nearest]).unwrap();
        let faults = FaultInjector::with_events(vec![disagg_hwsim::fault::FaultEvent {
            at: SimTime(10),
            kind: FaultKind::Corrupt { dev: p.dev, offset: p.offset, len: 128 },
        }]);
        let (_, used) = rr
            .read(&mgr, &topo, &mut ledger, &faults, cpus[0], 0, &mut buf, SimTime(100))
            .unwrap();
        assert_ne!(used, nearest, "corrupted window must not be served");
        assert_eq!(buf, [3u8; 64]);
        // A window outside the corruption still prefers the nearest.
        let (_, used2) = rr
            .read(&mgr, &topo, &mut ledger, &faults, cpus[0], 1024, &mut buf, SimTime(100))
            .unwrap();
        assert_eq!(used2, nearest);
    }

    #[test]
    fn all_replicas_down_is_an_error() {
        let (topo, mut mgr, mut ledger, pool, cpus) = fixture();
        let mut rr =
            ReplicatedRegion::create(&mut mgr, &topo, &[pool[0], pool[1]], 1024, OWNER, SimTime::ZERO)
                .unwrap();
        let faults = FaultInjector::with_events(
            rr.devs
                .iter()
                .map(|&d| disagg_hwsim::fault::FaultEvent {
                    at: SimTime(0),
                    kind: FaultKind::DeviceFail(d),
                })
                .collect(),
        );
        let mut buf = [0u8; 8];
        assert!(matches!(
            rr.read(&mgr, &topo, &mut ledger, &faults, cpus[0], 0, &mut buf, SimTime(1)),
            Err(FtolError::AllReplicasDown)
        ));
        assert!(matches!(
            rr.write(&mut mgr, &topo, &mut ledger, &faults, 0, &[1], SimTime(1)),
            Err(FtolError::AllReplicasDown)
        ));
    }

    #[test]
    fn recovery_restores_redundancy() {
        let (topo, mut mgr, mut ledger, pool, cpus) = fixture();
        let mut rr =
            ReplicatedRegion::create(&mut mgr, &topo, &[pool[0], pool[1]], 8192, OWNER, SimTime::ZERO)
                .unwrap();
        let none = FaultInjector::none();
        rr.write(&mut mgr, &topo, &mut ledger, &none, 0, &[5u8; 8192], SimTime::ZERO)
            .unwrap();

        // Replica 0's device fails.
        let faults = FaultInjector::with_events(vec![disagg_hwsim::fault::FaultEvent {
            at: SimTime(10),
            kind: FaultKind::DeviceFail(rr.devs[0]),
        }]);
        let took = rr
            .recover(&mut mgr, &topo, &mut ledger, &faults, 0, pool[2], SimTime(100))
            .unwrap();
        assert!(took > SimDuration::ZERO);
        assert_eq!(rr.devs[0], pool[2]);
        // Contents intact on the new replica.
        assert_eq!(&mgr.bytes(rr.replicas[0], OWNER).unwrap()[..16], &[5u8; 16]);
        // Redundancy is back: both replicas alive under the same fault plan.
        assert_eq!(rr.alive(&topo, &faults, SimTime(200)).len(), 2);
        let _ = cpus;
    }

    #[test]
    fn recovering_a_live_replica_is_rejected() {
        let (topo, mut mgr, mut ledger, pool, _) = fixture();
        let mut rr =
            ReplicatedRegion::create(&mut mgr, &topo, &[pool[0], pool[1]], 1024, OWNER, SimTime::ZERO)
                .unwrap();
        let faults = FaultInjector::none();
        assert!(matches!(
            rr.recover(&mut mgr, &topo, &mut ledger, &faults, 0, pool[2], SimTime(1)),
            Err(FtolError::ReplicaNotLost(0))
        ));
    }
}
