//! Arithmetic over the Galois field GF(2⁸).
//!
//! Reed–Solomon coding works over a finite field; we use GF(2⁸) with the
//! conventional generator polynomial `x⁸ + x⁴ + x³ + x² + 1` (0x11D), the
//! same field every production erasure-coding library uses. Addition is
//! XOR; multiplication goes through exp/log tables built once at startup.

use std::sync::OnceLock;

/// The irreducible polynomial defining the field (0x11D).
const POLY: u32 = 0x11D;

struct Tables {
    /// `exp[i] = g^i` for generator g = 2, doubled to avoid mod 255.
    exp: [u8; 512],
    /// `log[x]` such that `g^log[x] = x`; `log[0]` is unused.
    log: [u16; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u32 = 1;
        for (i, e) in exp.iter_mut().take(255).enumerate() {
            *e = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        let (head, tail) = exp.split_at_mut(255);
        tail[..255].copy_from_slice(head);
        tail[255..].copy_from_slice(&head[..2]);
        Tables { exp, log }
    })
}

/// Field addition (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Field division.
///
/// # Panics
///
/// Panics on division by zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] as usize + 255 - t.log[b as usize] as usize) % 255 + 255]
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    div(1, a)
}

/// Exponentiation `base^exp` in the field.
pub fn pow(base: u8, exp: u32) -> u8 {
    if exp == 0 {
        return 1;
    }
    if base == 0 {
        return 0;
    }
    let t = tables();
    let l = t.log[base as usize] as u64 * exp as u64 % 255;
    t.exp[l as usize]
}

/// Multiply-accumulate a slice: `dst[i] ^= c * src[i]`. The hot loop of
/// Reed–Solomon encoding.
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[lc + t.log[*s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor_and_self_inverse() {
        assert_eq!(add(0x53, 0xCA), 0x99);
        for a in 0..=255u8 {
            assert_eq!(add(a, a), 0);
            assert_eq!(add(a, 0), a);
        }
    }

    #[test]
    fn multiplication_has_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        // Spot-check a grid rather than the full 256^3 cube.
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(13) {
                assert_eq!(mul(a, b), mul(b, a));
                for c in (0..=255u8).step_by(29) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributivity_holds() {
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(19) {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        for a in 1..=255u8 {
            let i = inv(a);
            assert_eq!(mul(a, i), 1, "inv({a}) = {i} fails");
        }
    }

    #[test]
    fn division_round_trips() {
        for a in 1..=255u8 {
            for b in (1..=255u8).step_by(5) {
                assert_eq!(mul(div(a, b), b), a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        div(5, 0);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for base in [0u8, 1, 2, 3, 0x1D, 0xFF] {
            let mut acc = 1u8;
            for e in 0..20u32 {
                assert_eq!(pow(base, e), acc, "base {base} exp {e}");
                acc = mul(acc, base);
            }
        }
        assert_eq!(pow(0, 0), 1, "0^0 = 1 by convention");
    }

    #[test]
    fn generator_has_full_order() {
        // 2 generates the multiplicative group: 2^255 = 1 and no smaller
        // power (dividing 255) hits 1.
        assert_eq!(pow(2, 255), 1);
        for d in [3u32, 5, 15, 17, 51, 85] {
            assert_ne!(pow(2, d), 1, "order divides {d}?");
        }
    }

    #[test]
    fn mul_acc_matches_scalar_path() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x80, 0xFF] {
            let mut fast = vec![0xAAu8; 256];
            let mut slow = vec![0xAAu8; 256];
            mul_acc(&mut fast, &src, c);
            for (d, s) in slow.iter_mut().zip(&src) {
                *d = add(*d, mul(c, *s));
            }
            assert_eq!(fast, slow, "c = {c}");
        }
    }
}
