//! A systematic Reed–Solomon erasure code over GF(2⁸).
//!
//! Carbink-style fault-tolerant far memory erasure-codes memory spans so
//! that any `m` lost shards out of `k + m` can be reconstructed. This is a
//! from-scratch implementation of the standard construction: start from a
//! Vandermonde matrix, Gauss–Jordan the top `k × k` block to the identity
//! so the code is *systematic* (data shards are stored verbatim), and use
//! the bottom `m` rows to produce parity. Reconstruction inverts the
//! submatrix of surviving rows.

use crate::gf256;

/// Errors from the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// `k` or `m` is zero, or `k + m > 255`.
    BadParameters {
        /// Data shard count.
        k: usize,
        /// Parity shard count.
        m: usize,
    },
    /// Shards passed to an operation have inconsistent lengths.
    ShardSizeMismatch,
    /// Fewer than `k` shards survive; the data is unrecoverable.
    TooFewShards {
        /// Shards still present.
        present: usize,
        /// Shards needed.
        needed: usize,
    },
    /// The shard list does not have `k + m` entries.
    WrongShardCount,
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::BadParameters { k, m } => write!(f, "invalid RS parameters k={k}, m={m}"),
            RsError::ShardSizeMismatch => write!(f, "shards have inconsistent sizes"),
            RsError::TooFewShards { present, needed } => {
                write!(f, "only {present} shards present, {needed} needed")
            }
            RsError::WrongShardCount => write!(f, "wrong number of shards"),
        }
    }
}

impl std::error::Error for RsError {}

/// A `rows × cols` matrix over GF(2⁸).
#[derive(Debug, Clone, PartialEq)]
struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    fn zero(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Vandermonde: `a[r][c] = r^c`.
    fn vandermonde(rows: usize, cols: usize) -> Matrix {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf256::pow(r as u8, c as u32));
            }
        }
        m
    }

    #[inline]
    fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows);
        let mut out = Matrix::zero(self.rows, other.cols);
        for r in 0..self.rows {
            for c in 0..other.cols {
                let mut acc = 0u8;
                for i in 0..self.cols {
                    acc ^= gf256::mul(self.get(r, i), other.get(i, c));
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    /// Gauss–Jordan inversion. Returns `None` for singular matrices.
    fn invert(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                for c in 0..n {
                    let (x, y) = (a.get(col, c), a.get(pivot, c));
                    a.set(col, c, y);
                    a.set(pivot, c, x);
                    let (x, y) = (inv.get(col, c), inv.get(pivot, c));
                    inv.set(col, c, y);
                    inv.set(pivot, c, x);
                }
            }
            // Scale the pivot row to 1.
            let p = a.get(col, col);
            let pinv = gf256::inv(p);
            for c in 0..n {
                a.set(col, c, gf256::mul(a.get(col, c), pinv));
                inv.set(col, c, gf256::mul(inv.get(col, c), pinv));
            }
            // Eliminate the column elsewhere.
            for r in 0..n {
                if r != col {
                    let f = a.get(r, col);
                    if f != 0 {
                        for c in 0..n {
                            let v = gf256::add(a.get(r, c), gf256::mul(f, a.get(col, c)));
                            a.set(r, c, v);
                            let v = gf256::add(inv.get(r, c), gf256::mul(f, inv.get(col, c)));
                            inv.set(r, c, v);
                        }
                    }
                }
            }
        }
        Some(inv)
    }

    /// Rows `rows` of `self`, gathered into a new matrix.
    fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            for c in 0..self.cols {
                out.set(i, c, self.get(r, c));
            }
        }
        out
    }
}

/// A systematic Reed–Solomon codec with `k` data and `m` parity shards.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// The `(k + m) × k` encoding matrix; top block is the identity.
    encode_matrix: Matrix,
}

impl ReedSolomon {
    /// Creates a codec.
    pub fn new(k: usize, m: usize) -> Result<ReedSolomon, RsError> {
        if k == 0 || m == 0 || k + m > 255 {
            return Err(RsError::BadParameters { k, m });
        }
        // Vandermonde (k+m) × k, then normalize the top k × k block to the
        // identity so the code is systematic.
        let v = Matrix::vandermonde(k + m, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top.invert().expect("Vandermonde top block is invertible");
        let encode_matrix = v.mul(&top_inv);
        Ok(ReedSolomon { k, m, encode_matrix })
    }

    /// Data shard count.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity shard count.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Storage overhead factor `(k + m) / k`.
    pub fn overhead(&self) -> f64 {
        (self.k + self.m) as f64 / self.k as f64
    }

    /// Computes the `m` parity shards for `k` equal-length data shards.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, RsError> {
        if data.len() != self.k {
            return Err(RsError::WrongShardCount);
        }
        let len = data[0].len();
        if data.iter().any(|s| s.len() != len) {
            return Err(RsError::ShardSizeMismatch);
        }
        let mut parity = vec![vec![0u8; len]; self.m];
        for (p, out) in parity.iter_mut().enumerate() {
            let row = self.encode_matrix.row(self.k + p);
            for (i, shard) in data.iter().enumerate() {
                gf256::mul_acc(out, shard, row[i]);
            }
        }
        Ok(parity)
    }

    /// Verifies that a full shard set (data + parity) is consistent.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, RsError> {
        if shards.len() != self.k + self.m {
            return Err(RsError::WrongShardCount);
        }
        let parity = self.encode(&shards[..self.k])?;
        Ok(parity.iter().zip(&shards[self.k..]).all(|(a, b)| a == b))
    }

    /// Reconstructs all missing shards in place. `shards` must have
    /// exactly `k + m` entries; `None` marks an erasure. At least `k`
    /// shards must be present.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        if shards.len() != self.k + self.m {
            return Err(RsError::WrongShardCount);
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(RsError::TooFewShards {
                present: present.len(),
                needed: self.k,
            });
        }
        if present.len() == shards.len() {
            return Ok(());
        }
        let len = shards[present[0]].as_ref().expect("present").len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().expect("present").len() != len)
        {
            return Err(RsError::ShardSizeMismatch);
        }

        // Decode matrix: rows of the encode matrix for k surviving shards.
        let use_rows: Vec<usize> = present.iter().copied().take(self.k).collect();
        let sub = self.encode_matrix.select_rows(&use_rows);
        let dec = sub.invert().expect("any k rows of an RS matrix are independent");

        // Recover data shards: data = dec × surviving.
        let mut data: Vec<Vec<u8>> = Vec::with_capacity(self.k);
        for r in 0..self.k {
            let mut out = vec![0u8; len];
            for (i, &src_row) in use_rows.iter().enumerate() {
                let c = dec.get(r, i);
                let src = shards[src_row].as_ref().expect("present");
                gf256::mul_acc(&mut out, src, c);
            }
            data.push(out);
        }
        // Fill missing data shards.
        for i in 0..self.k {
            if shards[i].is_none() {
                shards[i] = Some(data[i].clone());
            }
        }
        // Recompute missing parity from the (now complete) data.
        let parity = self.encode(&data)?;
        for p in 0..self.m {
            if shards[self.k + p].is_none() {
                shards[self.k + p] = Some(parity[p].clone());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(k: usize, len: usize, seed: u8) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| (seed as usize + i * 31 + j * 7) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn parameters_are_validated() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(4, 0).is_err());
        assert!(ReedSolomon::new(200, 56).is_err());
        assert!(ReedSolomon::new(4, 2).is_ok());
        assert!(ReedSolomon::new(250, 5).is_ok());
    }

    #[test]
    fn encode_verify_round_trip() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = shards(4, 64, 1);
        let parity = rs.encode(&data).unwrap();
        assert_eq!(parity.len(), 2);
        let mut all = data.clone();
        all.extend(parity);
        assert!(rs.verify(&all).unwrap());
        // Corrupt one byte: verification fails.
        all[0][0] ^= 0xFF;
        assert!(!rs.verify(&all).unwrap());
    }

    #[test]
    fn recovers_any_single_data_shard() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = shards(4, 128, 7);
        let parity = rs.encode(&data).unwrap();
        for lost in 0..4 {
            let mut set: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .map(Some)
                .chain(parity.iter().cloned().map(Some))
                .collect();
            set[lost] = None;
            rs.reconstruct(&mut set).unwrap();
            assert_eq!(set[lost].as_ref().unwrap(), &data[lost], "shard {lost}");
        }
    }

    #[test]
    fn recovers_max_erasures_in_every_combination() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = shards(4, 32, 3);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();
        // Every pair of lost shards among the 6.
        for a in 0..6 {
            for b in (a + 1)..6 {
                let mut set: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                set[a] = None;
                set[b] = None;
                rs.reconstruct(&mut set).unwrap();
                for i in 0..6 {
                    assert_eq!(set[i].as_ref().unwrap(), &full[i], "lost ({a},{b}), shard {i}");
                }
            }
        }
    }

    #[test]
    fn too_many_erasures_fail_cleanly() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = shards(4, 16, 9);
        let parity = rs.encode(&data).unwrap();
        let mut set: Vec<Option<Vec<u8>>> = data
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        set[0] = None;
        set[1] = None;
        set[2] = None;
        assert_eq!(
            rs.reconstruct(&mut set).unwrap_err(),
            RsError::TooFewShards { present: 3, needed: 4 }
        );
    }

    #[test]
    fn parity_only_survivors_still_recover() {
        // Lose ALL data shards of a k=2, m=2 code: parity alone suffices.
        let rs = ReedSolomon::new(2, 2).unwrap();
        let data = shards(2, 48, 5);
        let parity = rs.encode(&data).unwrap();
        let mut set: Vec<Option<Vec<u8>>> = vec![
            None,
            None,
            Some(parity[0].clone()),
            Some(parity[1].clone()),
        ];
        rs.reconstruct(&mut set).unwrap();
        assert_eq!(set[0].as_ref().unwrap(), &data[0]);
        assert_eq!(set[1].as_ref().unwrap(), &data[1]);
    }

    #[test]
    fn mismatched_shard_sizes_rejected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let bad = vec![vec![0u8; 8], vec![0u8; 9]];
        assert_eq!(rs.encode(&bad).unwrap_err(), RsError::ShardSizeMismatch);
    }

    #[test]
    fn wrong_shard_count_rejected() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        assert_eq!(
            rs.encode(&shards(2, 8, 1)).unwrap_err(),
            RsError::WrongShardCount
        );
        let mut five: Vec<Option<Vec<u8>>> = vec![Some(vec![0; 8]); 4];
        assert_eq!(
            rs.reconstruct(&mut five).unwrap_err(),
            RsError::WrongShardCount
        );
    }

    #[test]
    fn nothing_missing_is_a_no_op() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = shards(3, 16, 2);
        let parity = rs.encode(&data).unwrap();
        let mut set: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        let before = set.clone();
        rs.reconstruct(&mut set).unwrap();
        assert_eq!(set, before);
    }

    #[test]
    fn systematic_data_shards_stored_verbatim() {
        // The whole point of the systematic construction: the first k
        // shards ARE the data (zero-cost reads in the common case).
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = shards(4, 16, 11);
        let parity = rs.encode(&data).unwrap();
        // Encoding does not touch the data shards; only parity is new.
        assert_eq!(parity.len(), 2);
        assert_eq!(rs.overhead(), 1.5);
    }

    #[test]
    fn larger_codes_work() {
        let rs = ReedSolomon::new(10, 4).unwrap();
        let data = shards(10, 256, 13);
        let parity = rs.encode(&data).unwrap();
        let mut set: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        // Lose four scattered shards.
        for i in [0, 5, 10, 13] {
            set[i] = None;
        }
        rs.reconstruct(&mut set).unwrap();
        for i in 0..10 {
            assert_eq!(set[i].as_ref().unwrap(), &data[i]);
        }
    }
}
