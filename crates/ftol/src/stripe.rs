//! Erasure-coded striping of regions across memory nodes.
//!
//! The Carbink-flavoured alternative to replication: a logical region is
//! split into `k` data spans placed on distinct failure domains, plus `m`
//! Reed–Solomon parity spans. Storage overhead drops from N× to
//! `(k+m)/k`; the price is parity updates on writes and a reconstruction
//! (read `k` surviving spans + decode) instead of a plain copy on
//! recovery. This matches the paper's pointer to "a combination of
//! erasure-coding, one-sided remote memory accesses ... as it is used by
//! Carbink".

use disagg_hwsim::contention::{BandwidthLedger, ResourceKey};
use disagg_hwsim::fault::FaultInjector;
use disagg_hwsim::ids::MemDeviceId;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;
use disagg_region::pool::RegionId;
use disagg_region::props::{AccessMode, PropertySet};
use disagg_region::region::{OwnerId, RegionManager};
use disagg_region::typed::RegionType;

use crate::reedsolomon::ReedSolomon;
use crate::FtolError;

/// Where parity/decode arithmetic runs (Carbink's "off-loadable parity
/// calculations"): on the host CPU, or offloaded to a DPU/accelerator
/// that streams GF(2⁸) multiply-accumulates an order of magnitude
/// faster and off the critical path of the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParityEngine {
    /// Host CPU computes parity and decodes (0.5 ns/B).
    #[default]
    Host,
    /// DPU/accelerator offload (0.05 ns/B).
    Offload,
}

impl ParityEngine {
    /// Modelled GF(2⁸) arithmetic cost per byte, nanoseconds.
    pub fn ns_per_byte(self) -> f64 {
        match self {
            ParityEngine::Host => 0.5,
            ParityEngine::Offload => 0.05,
        }
    }
}

/// A logical region striped as `k` data + `m` parity spans.
#[derive(Debug)]
pub struct StripedRegion {
    /// Data spans (indices `0..k`), then parity spans (`k..k+m`).
    pub spans: Vec<RegionId>,
    /// Devices backing each span.
    pub devs: Vec<MemDeviceId>,
    /// Bytes per span.
    pub span_size: u64,
    /// Logical size in bytes.
    pub size: u64,
    /// Owner of all spans.
    pub owner: OwnerId,
    /// Total bytes written including parity amplification (stats).
    pub bytes_written: u64,
    /// Where parity arithmetic runs.
    pub parity_engine: ParityEngine,
    rs: ReedSolomon,
}

impl StripedRegion {
    /// Creates a striped region over `k + m` devices on pairwise distinct
    /// nodes. The first `k` devices hold data, the rest parity.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        mgr: &mut RegionManager,
        topo: &Topology,
        devices: &[MemDeviceId],
        size: u64,
        k: usize,
        m: usize,
        owner: OwnerId,
        now: SimTime,
    ) -> Result<StripedRegion, FtolError> {
        let rs = ReedSolomon::new(k, m)?;
        if devices.len() != k + m {
            return Err(FtolError::NotEnoughDevices {
                have: devices.len(),
                need: k + m,
            });
        }
        for (i, &a) in devices.iter().enumerate() {
            for &b in &devices[i + 1..] {
                if topo.node_of_mem(a) == topo.node_of_mem(b) {
                    return Err(FtolError::SharedFailureDomain(a, b));
                }
            }
        }
        let span_size = size.div_ceil(k as u64).max(1);
        let mut spans = Vec::with_capacity(k + m);
        for &dev in devices {
            let id = mgr.alloc(
                dev,
                span_size,
                RegionType::GlobalScratch,
                PropertySet::new().with_mode(AccessMode::Async),
                owner,
                now,
            )?;
            spans.push(id);
        }
        Ok(StripedRegion {
            spans,
            devs: devices.to_vec(),
            span_size,
            size,
            owner,
            bytes_written: 0,
            parity_engine: ParityEngine::default(),
            rs,
        })
    }

    /// Switches parity/decode arithmetic to the given engine.
    pub fn with_parity_engine(mut self, engine: ParityEngine) -> Self {
        self.parity_engine = engine;
        self
    }

    /// Data span count.
    pub fn k(&self) -> usize {
        self.rs.data_shards()
    }

    /// Parity span count.
    pub fn m(&self) -> usize {
        self.rs.parity_shards()
    }

    /// Storage overhead factor `(k + m)/k`.
    pub fn overhead(&self) -> f64 {
        self.rs.overhead()
    }

    /// Span indices whose device and node are alive at `t`.
    pub fn alive(&self, topo: &Topology, faults: &FaultInjector, t: SimTime) -> Vec<usize> {
        (0..self.devs.len())
            .filter(|&i| {
                let dev = self.devs[i];
                !faults.device_failed(dev, t) && !faults.node_down(topo.node_of_mem(dev), t)
            })
            .collect()
    }

    /// Span indices whose bytes overlap a corrupted range on their
    /// device at `t`: the span is alive but its contents are suspect,
    /// so reads must not trust it as a reconstruction source.
    fn tainted(&self, mgr: &RegionManager, faults: &FaultInjector, t: SimTime) -> Vec<usize> {
        if faults.is_empty() {
            return Vec::new();
        }
        (0..self.spans.len())
            .filter(|&i| {
                mgr.placement(self.spans[i]).is_ok_and(|p| {
                    faults
                        .corrupted_ranges(p.dev, t)
                        .iter()
                        .any(|&(o, l)| o < p.offset + p.size && p.offset < o + l)
                })
            })
            .collect()
    }

    fn charge_span(
        &self,
        topo: &Topology,
        ledger: &mut BandwidthLedger,
        span: usize,
        bytes: u64,
        write: bool,
        now: SimTime,
    ) -> SimDuration {
        let dev = self.devs[span];
        let model = topo.mem(dev);
        let (lat, bw) = if write {
            (model.write_lat_ns, model.write_bw_bpns)
        } else {
            (model.read_lat_ns, model.read_bw_bpns)
        };
        let eff = model.effective_bytes(bytes) as f64;
        let start = now + SimDuration::from_nanos_f64(lat);
        let fin = ledger.reserve(ResourceKey::Mem(dev), start, eff, bw);
        fin - now
    }

    /// Writes `data` at logical `offset`, updating the touched data spans
    /// and recomputing parity. Span I/O proceeds in parallel; the write
    /// completes with the slowest span.
    pub fn write(
        &mut self,
        mgr: &mut RegionManager,
        topo: &Topology,
        ledger: &mut BandwidthLedger,
        offset: u64,
        data: &[u8],
        now: SimTime,
    ) -> Result<SimDuration, FtolError> {
        let end = offset + data.len() as u64;
        if end > self.size {
            return Err(FtolError::OutOfBounds {
                offset,
                len: data.len() as u64,
                size: self.size,
            });
        }
        let k = self.k();
        // Scatter the write across the affected data spans.
        let mut slowest = SimDuration::ZERO;
        let mut cursor = offset;
        let mut src = 0usize;
        while cursor < end {
            let span = (cursor / self.span_size) as usize;
            let within = cursor % self.span_size;
            let take = ((self.span_size - within) as usize).min(data.len() - src);
            mgr.write(self.spans[span], self.owner, within, &data[src..src + take])?;
            slowest = slowest.max(self.charge_span(topo, ledger, span, take as u64, true, now));
            self.bytes_written += take as u64;
            cursor += take as u64;
            src += take;
        }
        // Recompute parity from the full data spans and rewrite it.
        let data_spans: Vec<Vec<u8>> = (0..k)
            .map(|i| mgr.bytes(self.spans[i], self.owner).map(|b| b.to_vec()))
            .collect::<Result<_, _>>()?;
        let parity = self.rs.encode(&data_spans)?;
        // Parity arithmetic reads k spans and produces m spans.
        let parity_cost = SimDuration::from_nanos_f64(
            (k as u64 * self.span_size) as f64 * self.parity_engine.ns_per_byte(),
        );
        for (p, bytes) in parity.iter().enumerate() {
            mgr.write(self.spans[k + p], self.owner, 0, bytes)?;
            slowest = slowest.max(self.charge_span(topo, ledger, k + p, self.span_size, true, now));
            self.bytes_written += self.span_size;
        }
        Ok(slowest + parity_cost)
    }

    /// Reads `buf.len()` bytes at logical `offset`. If every needed data
    /// span is alive and uncorrupted this is a plain parallel read; if
    /// any is lost — its device failed, its node crashed, or its bytes
    /// overlap a corrupted range — the read degrades to reconstruction:
    /// fetch `k` trustworthy surviving spans, decode, and serve from the
    /// decoded data. Returns the duration and whether the read was
    /// degraded.
    #[allow(clippy::too_many_arguments)]
    pub fn read(
        &self,
        mgr: &RegionManager,
        topo: &Topology,
        ledger: &mut BandwidthLedger,
        faults: &FaultInjector,
        offset: u64,
        buf: &mut [u8],
        now: SimTime,
    ) -> Result<(SimDuration, bool), FtolError> {
        let end = offset + buf.len() as u64;
        if end > self.size {
            return Err(FtolError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                size: self.size,
            });
        }
        let tainted = self.tainted(mgr, faults, now);
        let alive: Vec<usize> = self
            .alive(topo, faults, now)
            .into_iter()
            .filter(|i| !tainted.contains(i))
            .collect();
        let k = self.k();
        let needed: Vec<usize> = ((offset / self.span_size) as usize
            ..=((end - 1) / self.span_size) as usize)
            .collect();
        let all_alive = needed.iter().all(|s| alive.contains(s));

        if all_alive {
            let mut slowest = SimDuration::ZERO;
            let mut cursor = offset;
            let mut dst = 0usize;
            while cursor < end {
                let span = (cursor / self.span_size) as usize;
                let within = cursor % self.span_size;
                let take = ((self.span_size - within) as usize).min(buf.len() - dst);
                mgr.read(self.spans[span], self.owner, within, &mut buf[dst..dst + take])?;
                slowest =
                    slowest.max(self.charge_span(topo, ledger, span, take as u64, false, now));
                cursor += take as u64;
                dst += take;
            }
            return Ok((slowest, false));
        }

        // Degraded read: gather k surviving spans, reconstruct, serve.
        if alive.len() < k {
            return Err(FtolError::Unrecoverable {
                alive: alive.len(),
                needed: k,
            });
        }
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; self.spans.len()];
        let mut slowest = SimDuration::ZERO;
        for &i in alive.iter().take(k) {
            shards[i] = Some(mgr.bytes(self.spans[i], self.owner)?.to_vec());
            slowest = slowest.max(self.charge_span(topo, ledger, i, self.span_size, false, now));
        }
        self.rs.reconstruct(&mut shards)?;
        let decode = SimDuration::from_nanos_f64(
            self.span_size as f64 * self.parity_engine.ns_per_byte(),
        );
        let total = slowest + decode;

        let mut cursor = offset;
        let mut dst = 0usize;
        while cursor < end {
            let span = (cursor / self.span_size) as usize;
            let within = (cursor % self.span_size) as usize;
            let take = (self.span_size as usize - within).min(buf.len() - dst);
            let shard = shards[span].as_ref().expect("reconstructed");
            buf[dst..dst + take].copy_from_slice(&shard[within..within + take]);
            cursor += take as u64;
            dst += take;
        }
        Ok((total, true))
    }

    /// Rebuilds the span lost on `lost` onto `spare`: read `k` surviving
    /// spans, decode, write the reconstructed span. Returns the recovery
    /// duration.
    #[allow(clippy::too_many_arguments)]
    pub fn recover(
        &mut self,
        mgr: &mut RegionManager,
        topo: &Topology,
        ledger: &mut BandwidthLedger,
        faults: &FaultInjector,
        lost: usize,
        spare: MemDeviceId,
        now: SimTime,
    ) -> Result<SimDuration, FtolError> {
        let alive = self.alive(topo, faults, now);
        if alive.contains(&lost) {
            return Err(FtolError::ReplicaNotLost(lost));
        }
        let k = self.k();
        if alive.len() < k {
            return Err(FtolError::Unrecoverable {
                alive: alive.len(),
                needed: k,
            });
        }
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; self.spans.len()];
        let mut slowest = SimDuration::ZERO;
        for &i in alive.iter().take(k) {
            shards[i] = Some(mgr.bytes(self.spans[i], self.owner)?.to_vec());
            slowest = slowest.max(self.charge_span(topo, ledger, i, self.span_size, false, now));
        }
        self.rs.reconstruct(&mut shards)?;
        let decode = SimDuration::from_nanos_f64(
            self.span_size as f64 * self.parity_engine.ns_per_byte(),
        );

        let new = mgr.alloc(
            spare,
            self.span_size,
            RegionType::GlobalScratch,
            PropertySet::new().with_mode(AccessMode::Async),
            self.owner,
            now,
        )?;
        mgr.write(new, self.owner, 0, shards[lost].as_ref().expect("reconstructed"))?;
        let _ = mgr.release(self.spans[lost], self.owner);
        self.spans[lost] = new;
        self.devs[lost] = spare;
        let write = self.charge_span(topo, ledger, lost, self.span_size, true, now);
        self.bytes_written += self.span_size;
        Ok(slowest + decode + write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disagg_hwsim::fault::{FaultEvent, FaultKind};
    use disagg_hwsim::presets::disaggregated_rack;

    const OWNER: OwnerId = OwnerId::App;

    fn fixture(blades: usize) -> (Topology, RegionManager, BandwidthLedger, Vec<MemDeviceId>) {
        let (topo, rack) = disaggregated_rack(2, 32, blades, 64);
        let mgr = RegionManager::new(&topo);
        (topo, mgr, BandwidthLedger::default_buckets(), rack.pool)
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 131 + 7) as u8).collect()
    }

    #[test]
    fn create_validates_devices_and_domains() {
        let (topo, mut mgr, _, pool) = fixture(4);
        assert!(matches!(
            StripedRegion::create(&mut mgr, &topo, &pool[..3], 1 << 20, 3, 1, OWNER, SimTime::ZERO),
            Err(FtolError::NotEnoughDevices { .. })
        ));
        let dup = [pool[0], pool[0], pool[1], pool[2]];
        assert!(matches!(
            StripedRegion::create(&mut mgr, &topo, &dup, 1 << 20, 3, 1, OWNER, SimTime::ZERO),
            Err(FtolError::SharedFailureDomain(_, _))
        ));
        let sr =
            StripedRegion::create(&mut mgr, &topo, &pool[..4], 1 << 20, 3, 1, OWNER, SimTime::ZERO)
                .unwrap();
        assert_eq!(sr.k(), 3);
        assert_eq!(sr.m(), 1);
        assert!((sr.overhead() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn write_read_round_trip_spanning_spans() {
        let (topo, mut mgr, mut ledger, pool) = fixture(4);
        let mut sr =
            StripedRegion::create(&mut mgr, &topo, &pool[..4], 3000, 3, 1, OWNER, SimTime::ZERO)
                .unwrap();
        let data = payload(2500);
        // Offset 100 spans all three data spans (span_size = 1000).
        sr.write(&mut mgr, &topo, &mut ledger, 100, &data, SimTime::ZERO)
            .unwrap();
        let mut buf = vec![0u8; 2500];
        let faults = FaultInjector::none();
        let (took, degraded) = sr
            .read(&mgr, &topo, &mut ledger, &faults, 100, &mut buf, SimTime::ZERO)
            .unwrap();
        assert!(!degraded);
        assert!(took > SimDuration::ZERO);
        assert_eq!(buf, data);
    }

    #[test]
    fn parity_amplifies_writes_less_than_replication() {
        let (topo, mut mgr, mut ledger, pool) = fixture(4);
        let mut sr =
            StripedRegion::create(&mut mgr, &topo, &pool[..4], 3000, 3, 1, OWNER, SimTime::ZERO)
                .unwrap();
        let data = payload(3000);
        sr.write(&mut mgr, &topo, &mut ledger, 0, &data, SimTime::ZERO)
            .unwrap();
        // 3000 data bytes + 1000 parity = 4000 written; 2x replication
        // of the same data would write 6000.
        assert_eq!(sr.bytes_written, 4000);
    }

    #[test]
    fn degraded_read_survives_a_lost_data_span() {
        let (topo, mut mgr, mut ledger, pool) = fixture(4);
        let mut sr =
            StripedRegion::create(&mut mgr, &topo, &pool[..4], 3000, 3, 1, OWNER, SimTime::ZERO)
                .unwrap();
        let data = payload(3000);
        sr.write(&mut mgr, &topo, &mut ledger, 0, &data, SimTime::ZERO)
            .unwrap();
        let faults = FaultInjector::with_events(vec![FaultEvent {
            at: SimTime(5),
            kind: FaultKind::DeviceFail(sr.devs[1]),
        }]);
        let mut buf = vec![0u8; 3000];
        let (took_degraded, degraded) = sr
            .read(&mgr, &topo, &mut ledger, &faults, 0, &mut buf, SimTime(10))
            .unwrap();
        assert!(degraded);
        assert_eq!(buf, data, "reconstruction must restore exact bytes");

        // A healthy read of the same range is faster than the degraded one.
        let mut ledger2 = BandwidthLedger::default_buckets();
        let none = FaultInjector::none();
        let (took_ok, _) = sr
            .read(&mgr, &topo, &mut ledger2, &none, 0, &mut buf, SimTime(10))
            .unwrap();
        assert!(took_degraded > took_ok);
    }

    #[test]
    fn corrupted_span_triggers_degraded_decode() {
        let (topo, mut mgr, mut ledger, pool) = fixture(4);
        let mut sr =
            StripedRegion::create(&mut mgr, &topo, &pool[..4], 3000, 3, 1, OWNER, SimTime::ZERO)
                .unwrap();
        let data = payload(3000);
        sr.write(&mut mgr, &topo, &mut ledger, 0, &data, SimTime::ZERO)
            .unwrap();
        // Silent corruption inside data span 1: the span stays alive but
        // cannot be trusted as a read or reconstruction source.
        let p = mgr.placement(sr.spans[1]).unwrap();
        let faults = FaultInjector::with_events(vec![FaultEvent {
            at: SimTime(5),
            kind: FaultKind::Corrupt { dev: p.dev, offset: p.offset + 10, len: 4 },
        }]);
        let mut buf = vec![0u8; 3000];
        let (_, degraded) = sr
            .read(&mgr, &topo, &mut ledger, &faults, 0, &mut buf, SimTime(10))
            .unwrap();
        assert!(degraded, "a corrupt span must not be read directly");
        assert_eq!(buf, data, "decode restores the exact bytes");
    }

    #[test]
    fn too_many_losses_are_unrecoverable() {
        let (topo, mut mgr, mut ledger, pool) = fixture(4);
        let mut sr =
            StripedRegion::create(&mut mgr, &topo, &pool[..4], 3000, 3, 1, OWNER, SimTime::ZERO)
                .unwrap();
        sr.write(&mut mgr, &topo, &mut ledger, 0, &payload(3000), SimTime::ZERO)
            .unwrap();
        let faults = FaultInjector::with_events(vec![
            FaultEvent {
                at: SimTime(1),
                kind: FaultKind::DeviceFail(sr.devs[0]),
            },
            FaultEvent {
                at: SimTime(1),
                kind: FaultKind::DeviceFail(sr.devs[1]),
            },
        ]);
        let mut buf = vec![0u8; 100];
        assert!(matches!(
            sr.read(&mgr, &topo, &mut ledger, &faults, 0, &mut buf, SimTime(2)),
            Err(FtolError::Unrecoverable { alive: 2, needed: 3 })
        ));
    }

    #[test]
    fn recovery_rebuilds_the_lost_span() {
        let (topo, mut mgr, mut ledger, pool) = fixture(5);
        let mut sr =
            StripedRegion::create(&mut mgr, &topo, &pool[..4], 3000, 3, 1, OWNER, SimTime::ZERO)
                .unwrap();
        let data = payload(3000);
        sr.write(&mut mgr, &topo, &mut ledger, 0, &data, SimTime::ZERO)
            .unwrap();
        let faults = FaultInjector::with_events(vec![FaultEvent {
            at: SimTime(5),
            kind: FaultKind::DeviceFail(sr.devs[2]),
        }]);
        let took = sr
            .recover(&mut mgr, &topo, &mut ledger, &faults, 2, pool[4], SimTime(10))
            .unwrap();
        assert!(took > SimDuration::ZERO);
        assert_eq!(sr.devs[2], pool[4]);
        // After recovery, a normal (non-degraded) read sees correct data.
        let mut buf = vec![0u8; 3000];
        let (_, degraded) = sr
            .read(&mgr, &topo, &mut ledger, &faults, 0, &mut buf, SimTime(20))
            .unwrap();
        assert!(!degraded);
        assert_eq!(buf, data);
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let (topo, mut mgr, mut ledger, pool) = fixture(4);
        let mut sr =
            StripedRegion::create(&mut mgr, &topo, &pool[..4], 1000, 3, 1, OWNER, SimTime::ZERO)
                .unwrap();
        assert!(matches!(
            sr.write(&mut mgr, &topo, &mut ledger, 990, &[0u8; 20], SimTime::ZERO),
            Err(FtolError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 20];
        let faults = FaultInjector::none();
        assert!(matches!(
            sr.read(&mgr, &topo, &mut ledger, &faults, 990, &mut buf, SimTime::ZERO),
            Err(FtolError::OutOfBounds { .. })
        ));
    }
}
