//! Criterion wrappers: one benchmark per paper artifact.
//!
//! Each bench runs the corresponding experiment in quick mode, so
//! `cargo bench` both regenerates every table/figure and tracks how fast
//! the simulator itself executes them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn paper_artifacts(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    for (id, runner) in disagg_bench::exp::all() {
        g.bench_function(id, |b| b.iter(|| black_box(runner(true))));
    }
    g.finish();
}

criterion_group!(benches, paper_artifacts);
criterion_main!(benches);
