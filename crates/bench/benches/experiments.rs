//! Paper-artifact benchmarks: one entry per table/figure.
//!
//! Each bench runs the corresponding experiment in quick mode, so
//! `cargo bench` both regenerates every table/figure and tracks how fast
//! the simulator itself executes them. Uses the in-repo harness so the
//! workspace builds offline with no external dependencies.

use std::hint::black_box;

use disagg_bench::harness::{bench_named, header, BenchOpts};

fn main() {
    header("paper artifacts (quick mode)");
    let opts = BenchOpts {
        max_iters: 10,
        ..BenchOpts::default()
    };
    for (id, runner) in disagg_bench::exp::all() {
        bench_named(&format!("paper/{id}"), opts, || {
            black_box(runner(true));
        });
    }
}
