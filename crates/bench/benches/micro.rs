//! Microbenchmarks of the runtime's hot primitives: cost resolution,
//! allocation, the contention ledger, Reed-Solomon coding, scheduling,
//! and an end-to-end job submission.

use std::hint::black_box;

use disagg_bench::harness::{bench, bench_named, header, BenchOpts};
use disagg_core::prelude::*;
use disagg_ftol::reedsolomon::ReedSolomon;
use disagg_hwsim::contention::{BandwidthLedger, ResourceKey};
use disagg_hwsim::device::{AccessOp, AccessPattern};
use disagg_hwsim::ids::MemDeviceId;
use disagg_hwsim::presets::single_server;
use disagg_hwsim::time::SimTime;
use disagg_region::pool::MemoryPool;
use disagg_sched::cost::CostModel;
use disagg_sched::enforce::xor_cipher;
use disagg_workloads::hospital::{hospital_job, HospitalConfig};

fn access_cost() {
    let (topo, h) = single_server();
    bench("topology/access_cost", || {
        black_box(topo.access_cost(
            black_box(h.cpu),
            black_box(h.cxl),
            black_box(1 << 20),
            AccessOp::Read,
            AccessPattern::Sequential,
        ));
    });
}

fn cost_model_rank() {
    let (topo, h) = single_server();
    let pool = MemoryPool::new(&topo);
    let model = CostModel::new();
    let props = disagg_region::props::PropertySet::new();
    bench("cost/rank_all_devices", || {
        black_box(model.rank(&topo, &pool, h.cpu, &props, 1 << 20));
    });
}

fn pool_alloc_free() {
    let (topo, h) = single_server();
    let mut pool = MemoryPool::new(&topo);
    bench("pool/alloc_free_4k", || {
        let id = pool.alloc(h.dram, 4096).expect("alloc");
        pool.free(id).expect("free");
    });
}

fn ledger_reserve() {
    let mut ledger = BandwidthLedger::default_buckets();
    let mut t = 0u64;
    bench("ledger/reserve", || {
        t += 100;
        black_box(ledger.reserve(
            ResourceKey::Mem(MemDeviceId(0)),
            SimTime(t),
            4096.0,
            100.0,
        ));
    });
}

fn reed_solomon() {
    let rs = ReedSolomon::new(4, 2).expect("params");
    let shards: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 64 << 10]).collect();
    bench("rs/encode_4+2_64k", || {
        black_box(rs.encode(black_box(&shards)).expect("encode"));
    });
    let parity = rs.encode(&shards).expect("encode");
    bench("rs/reconstruct_2_lost_64k", || {
        let mut set: Vec<Option<Vec<u8>>> = shards
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        set[0] = None;
        set[5] = None;
        rs.reconstruct(&mut set).expect("reconstruct");
        black_box(set);
    });
}

fn cipher() {
    let mut data = vec![0xABu8; 64 << 10];
    bench("enforce/xor_cipher_64k", || {
        xor_cipher(black_box(&mut data), 0xDEAD_BEEF);
    });
}

fn schedule_dag() {
    use disagg_dataflow::{JobBuilder, TaskSpec};
    use disagg_sched::schedule::{SchedPolicy, Scheduler};
    let (topo, _) = single_server();
    let mut job = JobBuilder::new("wide");
    let mut prev = None;
    for i in 0..100 {
        let t = job.task(
            TaskSpec::new(format!("t{i}"))
                .work(WorkClass::Scalar, 100_000)
                .output_bytes(1 << 16),
        );
        if let Some(p) = prev {
            if i % 3 != 0 {
                job.edge(p, t);
            }
        }
        prev = Some(t);
    }
    let spec = job.build().expect("valid");
    bench("sched/heft_100_tasks", || {
        black_box(
            Scheduler::new(SchedPolicy::Heft)
                .plan(&topo, &[(JobId(0), &spec)])
                .expect("plan"),
        );
    });
}

/// Event-loop throughput on the rack-scale preset: the stress batch
/// from the parallel driver, reported as events/sec (the executor's
/// unit of work). Compare against `driver::BASELINE_TASKS_PER_SEC` for
/// the pre-refactor trajectory.
fn events_per_sec() {
    use disagg_bench::driver;
    let opts = BenchOpts {
        warmup_iters: 1,
        max_iters: 5,
        ..BenchOpts::default()
    };
    let (jobs, layers, width) = (8, 16, 16);
    let mut last = (0usize, 0u64, std::time::Duration::ZERO);
    let stats = bench_named("executor/rack_stress_8x16x16", opts, || {
        last = driver::stress_run(jobs, layers, width, 1);
    });
    let (tasks, events, _) = last;
    let eps = events as f64 / stats.min.as_secs_f64();
    println!(
        "executor/events_per_sec            {tasks} tasks, {events} events → {eps:.0} events/sec (best iter)"
    );
}

/// Observability overhead: the same stress batch with (a) no observer
/// (the NullObserver-equivalent default — no tap installed), (b) a
/// streaming metrics + timeline + event-buffer FullObserver, and (c)
/// buffered tracing only. The events/sec gap between (a) and the seed
/// baseline is the cost of having observability *available*; between
/// (a) and (b) the cost of having it *on*.
fn trace_overhead() {
    use disagg_bench::driver;
    use disagg_core::prelude::{FullObserver, ObserverSlot};
    use disagg_hwsim::presets::disaggregated_rack;
    use std::sync::{Arc, Mutex};

    let opts = BenchOpts {
        warmup_iters: 1,
        max_iters: 5,
        ..BenchOpts::default()
    };
    let (jobs, layers, width) = (4, 8, 8);
    let run = |config: RuntimeConfig| {
        let (topo, _rack) = disaggregated_rack(4, 16, 4, 256);
        let mut rt = Runtime::new(topo, config);
        let batch = driver::stress_jobs(jobs, layers, width);
        rt.execute(batch).expect("stress batch runs").events
    };

    let mut events = 0u64;
    let null = bench_named("trace_overhead/null_observer", opts, || {
        events = run(RuntimeConfig::default());
    });
    let full = bench_named("trace_overhead/full_observer", opts, || {
        let sink = Arc::new(Mutex::new(FullObserver::new()));
        events = run(RuntimeConfig::default().with_observer(ObserverSlot::shared(sink.clone())));
        black_box(sink.lock().unwrap().events.len());
    });
    let traced = bench_named("trace_overhead/buffered_trace", opts, || {
        events = run(RuntimeConfig::traced());
    });
    let eps = |d: std::time::Duration| events as f64 / d.as_secs_f64();
    println!(
        "trace_overhead/events_per_sec      null {:.0} | full observer {:.0} ({:.1}% slower) | buffered trace {:.0} ({:.1}% slower)",
        eps(null.min),
        eps(full.min),
        (full.min.as_secs_f64() / null.min.as_secs_f64() - 1.0) * 100.0,
        eps(traced.min),
        (traced.min.as_secs_f64() / null.min.as_secs_f64() - 1.0) * 100.0,
    );
}

fn end_to_end() {
    let opts = BenchOpts {
        max_iters: 10,
        ..BenchOpts::default()
    };
    bench_named("e2e/hospital_job", opts, || {
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        black_box(
            rt.execute(hospital_job(HospitalConfig {
                frames: 2,
                ..HospitalConfig::default()
            }))
            .expect("runs"),
        );
    });
}

fn main() {
    // Optional substring filters so a single group can be re-measured in
    // isolation: `cargo bench --bench micro -- trace_overhead` runs only
    // the groups whose name contains a filter (scripts/bench_guard.sh
    // uses this for the observer-overhead gate). Cargo's own `--bench`
    // style flags are ignored.
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let wants =
        |name: &str| filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()));
    let groups: [(&str, fn()); 10] = [
        ("topology/access_cost", access_cost),
        ("cost/rank_all_devices", cost_model_rank),
        ("pool/alloc_free", pool_alloc_free),
        ("ledger/reserve", ledger_reserve),
        ("rs/reed_solomon", reed_solomon),
        ("enforce/xor_cipher", cipher),
        ("sched/heft", schedule_dag),
        ("executor/events_per_sec", events_per_sec),
        ("trace_overhead", trace_overhead),
        ("e2e/hospital_job", end_to_end),
    ];
    header("micro");
    for (name, group) in groups {
        if wants(name) {
            group();
        }
    }
}
