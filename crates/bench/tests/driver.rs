//! Parallel driver determinism: fanning the experiment suite across
//! worker threads must not change a single output byte relative to the
//! serial reference path, and repeated runs must agree with themselves.

use disagg_bench::driver;

fn ids(results: &[driver::ExpResult]) -> Vec<&'static str> {
    results.iter().map(|r| r.id).collect()
}

fn outputs(results: &[driver::ExpResult]) -> Vec<String> {
    results.iter().map(|r| r.output.clone()).collect()
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let only: Vec<String> = vec!["table2".into(), "fig4".into()];
    let serial = driver::run_experiments(&only, true, 1);
    let parallel = driver::run_experiments(&only, true, 4);
    assert_eq!(ids(&serial), vec!["table2", "fig4"], "registry order preserved");
    assert_eq!(ids(&serial), ids(&parallel));
    assert_eq!(outputs(&serial), outputs(&parallel));
    assert!(serial.iter().all(|r| !r.output.is_empty()));
}

#[test]
fn repeated_parallel_runs_agree() {
    let only: Vec<String> = vec!["table2".into(), "fig4".into()];
    let a = driver::run_experiments(&only, true, 4);
    let b = driver::run_experiments(&only, true, 4);
    assert_eq!(outputs(&a), outputs(&b));
}

#[test]
fn unknown_only_filter_yields_empty_suite() {
    let only: Vec<String> = vec!["no-such-exp".into()];
    assert!(driver::run_experiments(&only, true, 2).is_empty());
}
