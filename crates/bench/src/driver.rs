//! Parallel experiment driver.
//!
//! Virtual time is single-threaded by design — one event loop per
//! [`Runtime`] keeps the simulation bit-for-bit deterministic. Sweeps
//! are not: the 16 `exp_*` experiments and intra-experiment config
//! sweeps are independent simulations, so the driver fans them across
//! cores with `std::thread::scope` (no external dependencies) and
//! merges results back in submission order. The merge is index-stable:
//! result `i` always lands in slot `i` no matter which worker finishes
//! first, so parallel output is byte-identical to a serial run.
//!
//! The driver also measures simulator throughput (events/sec of the
//! executor's event loop on a rack-scale stress batch) and emits a
//! machine-readable `BENCH_disagg.json` so successive PRs accumulate a
//! performance trajectory.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use disagg_core::obs::{
    chrome_trace, folded_stacks, render_critical_paths, validate_chrome_trace, FullObserver,
    ObserverSlot,
};
use disagg_core::prelude::{RecoveryPolicy, Runtime, RuntimeConfig};
use disagg_dataflow::job::JobSpec;
use disagg_dataflow::task::TaskId;
use disagg_dataflow::{JobBuilder, TaskSpec};
use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::fault::{FaultInjector, FaultKind};
use disagg_hwsim::presets::{
    disaggregated_rack, hetero_storage_server, single_server, two_socket,
};
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;
use disagg_workloads::dbms::{query_job, DbmsConfig};
use disagg_workloads::hospital::{hospital_job, HospitalConfig};
use disagg_workloads::hpc::{stencil_job, HpcConfig};
use disagg_workloads::ml::{training_job, MlConfig};
use disagg_workloads::streaming::{windowed_job, StreamConfig};

use crate::exp;
use crate::exp::chaos::ChaosRow;
use crate::exp::chaos_serve::ChaosServeRecord;
use crate::exp::serving::ServingRecord;

/// Order-preserving parallel map: runs `f` over `items` on up to
/// `threads` workers and returns results in input order. `threads <= 1`
/// degenerates to a serial loop (the byte-identical reference path).
pub fn sweep<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("claimed once");
                let r = f(item);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// One experiment's outcome: rendered table plus its wall-clock.
#[derive(Debug, Clone)]
pub struct ExpResult {
    /// Experiment id ("table1", "fig4", ...).
    pub id: &'static str,
    /// The rendered ASCII table (deterministic; what gets printed).
    pub output: String,
    /// Host wall-clock the experiment took.
    pub wall: Duration,
}

/// Runs the experiment suite — all of it, or the ids in `only` — across
/// `threads` workers. Results come back in registry order regardless of
/// completion order.
pub fn run_experiments(only: &[String], quick: bool, threads: usize) -> Vec<ExpResult> {
    let suite: Vec<exp::Experiment> = exp::all()
        .into_iter()
        .filter(|(id, _)| only.is_empty() || only.iter().any(|o| o == id))
        .collect();
    sweep(suite, threads, |(id, runner)| {
        let t = Instant::now();
        let table = runner(quick);
        ExpResult { id, output: table.render(), wall: t.elapsed() }
    })
}

/// The rack-scale event-loop stress workload: `jobs` layered DAGs of
/// `layers`×`width` small tasks each, every non-source task depending
/// on two tasks of the previous layer.
pub fn stress_jobs(jobs: usize, layers: usize, width: usize) -> Vec<JobSpec> {
    (0..jobs)
        .map(|j| {
            let mut job = JobBuilder::new(format!("sweep{j}"));
            let mut prev: Vec<TaskId> = Vec::new();
            for l in 0..layers {
                let cur: Vec<_> = (0..width)
                    .map(|i| {
                        job.task(
                            TaskSpec::new(format!("t{l}_{i}"))
                                .work(WorkClass::Scalar, 10_000)
                                .output_bytes(4096),
                        )
                    })
                    .collect();
                for (i, &t) in cur.iter().enumerate() {
                    if l > 0 {
                        job.edge(prev[i % prev.len()], t);
                        job.edge(prev[(i + 1) % prev.len()], t);
                    }
                }
                prev = cur;
            }
            job.build().expect("stress job is a valid DAG")
        })
        .collect()
}

/// Simulator throughput on one stress configuration.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// Configuration label, e.g. `"j8_l16_w16"`.
    pub name: String,
    /// Tasks executed.
    pub tasks: usize,
    /// Executor event-loop events processed.
    pub events: u64,
    /// Best wall-clock over the measurement repetitions.
    pub wall: Duration,
}

impl Throughput {
    /// Events per host second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64()
    }

    /// Tasks per host second.
    pub fn tasks_per_sec(&self) -> f64 {
        self.tasks as f64 / self.wall.as_secs_f64()
    }
}

/// Runs the stress batch once on the rack-scale preset with the event
/// loop split across `shards` and returns `(tasks, events, wall)`. The
/// report — including the event count — is bit-for-bit identical at
/// every shard count; only the wall-clock may differ.
pub fn stress_run(jobs: usize, layers: usize, width: usize, shards: usize) -> (usize, u64, Duration) {
    let (topo, _rack) = disaggregated_rack(4, 16, 4, 256);
    let mut rt = Runtime::new(topo, RuntimeConfig::default().with_shards(shards));
    let batch = stress_jobs(jobs, layers, width);
    let t = Instant::now();
    let report = rt.execute(batch).expect("stress batch runs");
    (report.tasks.len(), report.events, t.elapsed())
}

/// Best-of-`reps` throughput for one stress configuration.
pub fn measure_throughput(
    jobs: usize,
    layers: usize,
    width: usize,
    reps: usize,
    shards: usize,
) -> Throughput {
    let mut best: Option<(usize, u64, Duration)> = None;
    for _ in 0..reps.max(1) {
        let r = stress_run(jobs, layers, width, shards);
        if best.as_ref().map(|b| r.2 < b.2).unwrap_or(true) {
            best = Some(r);
        }
    }
    let (tasks, events, wall) = best.expect("at least one rep");
    Throughput { name: format!("j{jobs}_l{layers}_w{width}"), tasks, events, wall }
}

/// One row of the shard-scaling sweep: the same stress configuration
/// driven at a different shard count.
#[derive(Debug, Clone)]
pub struct ShardScalingRow {
    /// Stress configuration label (same format as [`Throughput::name`]).
    pub name: String,
    /// Requested shard count.
    pub shards: usize,
    /// Tasks executed (shard-invariant).
    pub tasks: usize,
    /// Events committed (shard-invariant — the equivalence goldens pin
    /// this, so a cross-count mismatch here is a correctness bug, not a
    /// perf artifact).
    pub events: u64,
    /// Best wall-clock over the measurement repetitions.
    pub wall: Duration,
}

impl ShardScalingRow {
    /// Events per host second at this shard count.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64()
    }
}

/// Measures one stress configuration across `counts` shard counts
/// (best-of-`reps` each). The first row is the reference for speedup.
pub fn measure_shard_scaling(
    jobs: usize,
    layers: usize,
    width: usize,
    reps: usize,
    counts: &[usize],
) -> Vec<ShardScalingRow> {
    counts
        .iter()
        .map(|&shards| {
            let t = measure_throughput(jobs, layers, width, reps, shards);
            ShardScalingRow { name: t.name, shards, tasks: t.tasks, events: t.events, wall: t.wall }
        })
        .collect()
}

/// Pre-refactor (seed executor) tasks/sec on the same stress configs and
/// host class, captured before this PR's hot-path work landed. The event
/// sequence per workload is unchanged (bit-for-bit identical reports),
/// so tasks/sec ratios equal events/sec ratios.
pub const BASELINE_TASKS_PER_SEC: [(&str, f64); 3] = [
    ("j4_l8_w8", 142_951.0),
    ("j8_l16_w16", 116_836.0),
    ("j16_l24_w24", 79_527.0),
];

/// The stress configurations the driver measures (quick keeps only the
/// smallest).
pub fn throughput_suite(quick: bool) -> Vec<(usize, usize, usize)> {
    if quick {
        vec![(4, 8, 8)]
    } else {
        vec![(4, 8, 8), (8, 16, 16), (16, 24, 24)]
    }
}

/// A representative observed workload for one experiment id: the
/// topology, config, and jobs whose event stream stands in for the
/// experiment's behavior. Experiments construct their runtimes
/// internally (often many per sweep), so trace artifacts re-run one
/// matching workload with an observer attached instead of threading an
/// observer through every sweep point.
pub fn representative(id: &str, quick: bool) -> Option<(Topology, RuntimeConfig, Vec<JobSpec>)> {
    let config = RuntimeConfig::default();
    let dbms = || {
        query_job(DbmsConfig {
            tuples: if quick { 2_000 } else { 20_000 },
            probe_tuples: if quick { 1_000 } else { 10_000 },
            ..DbmsConfig::default()
        })
    };
    let some = |topo: Topology, jobs: Vec<JobSpec>| Some((topo, config.clone(), jobs));
    match id {
        // Static tables: a small pipeline on the plain server stands in.
        "table1" | "table2" | "table3" | "fig3" | "ablation" => {
            some(single_server().0, vec![dbms()])
        }
        // The CXL-pool rack of fig1 has no persistent tier, so the rack
        // representative is the fully disaggregated one.
        "fig1" => some(disaggregated_rack(4, 16, 4, 256).0, vec![dbms()]),
        "fig2" => some(
            single_server().0,
            vec![hospital_job(HospitalConfig {
                frames: if quick { 4 } else { 16 },
                ..HospitalConfig::default()
            })],
        ),
        // two_socket is DRAM-only, so the NUMA representative runs a
        // plain layered DAG (no persistent outputs to place).
        "numa" => some(two_socket().0, stress_jobs(1, 4, 4)),
        "fig4" | "hpc" => some(
            single_server().0,
            vec![stencil_job(HpcConfig {
                cells: if quick { 2_048 } else { 8_192 },
                ..HpcConfig::default()
            })],
        ),
        "naive" | "tiering" => some(hetero_storage_server().0, vec![dbms()]),
        "async" | "stream" => some(
            single_server().0,
            vec![windowed_job(StreamConfig {
                events: if quick { 4_000 } else { 20_000 },
                ..StreamConfig::default()
            })],
        ),
        "ftol" => some(
            disaggregated_rack(4, 16, 4, 256).0,
            vec![training_job(MlConfig {
                samples: if quick { 1_024 } else { 4_096 },
                ..MlConfig::default()
            })],
        ),
        "online" => some(
            disaggregated_rack(4, 16, 4, 256).0,
            stress_jobs(if quick { 2 } else { 4 }, 4, 4),
        ),
        // The chaos representative crashes a node halfway through the
        // fault-free makespan (probed first), so the observer sees the
        // detect → retry path.
        "chaos" => {
            let mut probe = Runtime::new(disaggregated_rack(4, 16, 4, 256).0, config.clone());
            let t = probe.execute(vec![dbms()]).expect("chaos probe run").makespan;
            let (topo, rack) = disaggregated_rack(4, 16, 4, 256);
            let mut faults = FaultInjector::none();
            faults.schedule(SimTime(t.0 / 2), FaultKind::NodeCrash(rack.nodes[0]));
            faults.schedule(SimTime(t.0 / 2 + t.0 / 4), FaultKind::NodeRecover(rack.nodes[0]));
            let recovery = RecoveryPolicy::default()
                .with_detection_delay(SimDuration(2_000))
                .with_backoff(SimDuration(1_000));
            Some((topo, config.with_faults(faults).with_recovery(recovery), vec![dbms()]))
        }
        _ => None,
    }
}

/// The observability artifacts of one representative run.
#[derive(Debug, Clone)]
pub struct Artifacts {
    /// Experiment id the run represents.
    pub id: String,
    /// Perfetto-loadable Chrome trace-event JSON (validated).
    pub chrome_trace: String,
    /// Metrics snapshot as JSON.
    pub metrics_json: String,
    /// Folded flamegraph stacks (`job;task;layer count`).
    pub folded: String,
    /// Rendered top-3 critical paths with per-layer attribution.
    pub critical_paths: String,
}

/// Runs the representative workload for `id` with a full observer
/// attached and returns its artifacts. The emitted Chrome trace is
/// round-trip validated before being returned; a validation failure is
/// a bug, so it errors rather than writing a broken file.
pub fn observed_artifacts(id: &str, quick: bool) -> Option<Result<Artifacts, String>> {
    let (topo, config, jobs) = representative(id, quick)?;
    let sink = Arc::new(Mutex::new(FullObserver::new()));
    let mut rt = Runtime::new(topo, config.with_observer(ObserverSlot::shared(sink.clone())));
    let report = match rt.execute(jobs) {
        Ok(r) => r,
        Err(e) => return Some(Err(format!("{id}: representative run failed: {e:?}"))),
    };
    let obs = sink.lock().expect("observer lock");
    let doc = chrome_trace(&obs.events, rt.topology());
    if let Err(e) = validate_chrome_trace(&doc) {
        return Some(Err(format!("{id}: emitted chrome trace is invalid: {e}")));
    }
    let metrics_json = report
        .metrics
        .as_ref()
        .map(|m| m.to_json())
        .unwrap_or_else(|| "{}".to_string());
    let (spans, paths) = report.critical_paths(3);
    Some(Ok(Artifacts {
        id: id.to_string(),
        chrome_trace: doc,
        metrics_json,
        folded: folded_stacks(&spans),
        critical_paths: render_critical_paths(&spans, &paths),
    }))
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Re-measures the chaos sweep for the benchmark record. Unlike the
/// rendered table, these rows carry raw virtual-time numbers; every
/// field is simulation-derived (no wall-clock), so the section is
/// byte-identical across runs.
pub fn chaos_record(quick: bool) -> Vec<ChaosRow> {
    exp::chaos::measure(quick)
}

/// Re-measures the serving sweep for the benchmark record. Like the
/// chaos section, every field is virtual-time-only, so the section is
/// byte-identical across runs and shard counts.
pub fn serving_record(quick: bool) -> ServingRecord {
    exp::serving::measure(quick)
}

/// Re-measures the chaos-under-load sweep (fault-aware controls vs the
/// uncontrolled baseline) for the `serving.chaos` section. Virtual-time
/// only, byte-identical across runs and shard counts.
pub fn chaos_serve_record(quick: bool) -> ChaosServeRecord {
    exp::chaos_serve::measure(quick)
}

/// Best-of-`reps` wall-clock throughput of one saturation-load serving
/// pass (the `serving_mix` record `scripts/bench_guard.sh` watches).
/// The virtual outputs are deterministic; only the wall-clock moves.
pub fn measure_serving_throughput(reps: usize, quick: bool) -> Throughput {
    let requests = if quick { 32 } else { 96 };
    let layer = exp::serving::templates();
    let cfg = exp::serving::saturated_config(requests);
    let mut best: Option<(usize, u64, Duration)> = None;
    for _ in 0..reps.max(1) {
        let (topo, _rack) = disaggregated_rack(4, 8, 2, 32);
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        let t = Instant::now();
        let report = layer.run(&mut rt, &cfg).expect("serving throughput pass");
        let r = (report.run.tasks.len(), report.run.events, t.elapsed());
        if best.as_ref().map(|b| r.2 < b.2).unwrap_or(true) {
            best = Some(r);
        }
    }
    let (tasks, events, wall) = best.expect("at least one rep");
    Throughput { name: "serving_mix".into(), tasks, events, wall }
}

/// One traced saturation serving pass rendered as Perfetto documents:
/// the full trace (device lanes plus one request-span lane per tenant)
/// and the exemplar-only view (each tenant's p99 exemplar requests
/// broken into latency-component segments). Both documents are
/// validated before being returned, so callers never write a file
/// Perfetto would reject.
pub fn serving_trace_artifacts(quick: bool) -> Result<(String, String), String> {
    let requests = if quick { 32 } else { 96 };
    let layer = exp::serving::templates();
    let cfg = exp::serving::saturated_config(requests);
    let (topo, _rack) = disaggregated_rack(4, 8, 2, 32);
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let report = layer
        .run(&mut rt, &cfg)
        .map_err(|e| format!("serving trace pass failed: {e}"))?;
    let doc = disagg_core::obs::serving_chrome_trace(
        rt.trace().events(),
        rt.topology(),
        &report.spans,
    );
    let stats = validate_chrome_trace(&doc).map_err(|e| format!("invalid serving trace: {e}"))?;
    if stats.request_spans != report.admitted {
        return Err(format!(
            "serving trace carries {} request spans for {} admitted requests",
            stats.request_spans, report.admitted
        ));
    }
    let exemplars = disagg_core::obs::exemplar_chrome_trace(&report.spans)
        .ok_or("serving pass produced no exemplar requests")?;
    validate_chrome_trace(&exemplars).map_err(|e| format!("invalid exemplar trace: {e}"))?;
    Ok((doc, exemplars))
}

/// Renders the machine-readable benchmark record (`BENCH_disagg.json`).
/// Hand-rolled JSON keeps the workspace dependency-free.
#[allow(clippy::too_many_arguments)]
pub fn bench_json(
    experiments: &[ExpResult],
    throughputs: &[Throughput],
    shard_scaling: &[ShardScalingRow],
    chaos: &[ChaosRow],
    serving: Option<&ServingRecord>,
    chaos_serve: Option<&ChaosServeRecord>,
    quick: bool,
    threads: usize,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"disagg-bench-v1\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"throughput\": [\n");
    for (i, t) in throughputs.iter().enumerate() {
        let baseline = BASELINE_TASKS_PER_SEC
            .iter()
            .find(|(n, _)| *n == t.name)
            .map(|&(_, b)| b);
        let speedup = baseline.map(|b| t.tasks_per_sec() / b);
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"tasks\": {}, \"events\": {}, \"wall_s\": {:.6}, \
             \"events_per_sec\": {:.0}, \"tasks_per_sec\": {:.0}, \
             \"baseline_tasks_per_sec\": {}, \"speedup_vs_seed\": {}}}{}\n",
            json_escape(&t.name),
            t.tasks,
            t.events,
            t.wall.as_secs_f64(),
            t.events_per_sec(),
            t.tasks_per_sec(),
            baseline.map(|b| format!("{b:.0}")).unwrap_or_else(|| "null".into()),
            speedup.map(|s| format!("{s:.2}")).unwrap_or_else(|| "null".into()),
            if i + 1 < throughputs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    // The same stress configuration driven at increasing shard counts.
    // `tasks`/`events` are shard-invariant by construction; only the
    // wall-clock (and the rates derived from it) may move.
    out.push_str("  \"shard_scaling\": [\n");
    let reference = shard_scaling.first().map(|r| r.wall.as_secs_f64());
    for (i, r) in shard_scaling.iter().enumerate() {
        let speedup = reference.map(|w1| w1 / r.wall.as_secs_f64()).unwrap_or(1.0);
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"shards\": {}, \"tasks\": {}, \"events\": {}, \
             \"wall_s\": {:.6}, \"events_per_sec\": {:.0}, \"speedup_vs_1shard\": {:.2}}}{}\n",
            json_escape(&r.name),
            r.shards,
            r.tasks,
            r.events,
            r.wall.as_secs_f64(),
            r.events_per_sec(),
            speedup,
            if i + 1 < shard_scaling.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"experiments\": [\n");
    for (i, e) in experiments.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"wall_s\": {:.6}}}{}\n",
            json_escape(e.id),
            e.wall.as_secs_f64(),
            if i + 1 < experiments.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    // Virtual-time only — this section must be byte-identical between
    // runs (CI diffs it to police chaos-sweep determinism).
    out.push_str("  \"chaos\": [\n");
    for (i, r) in chaos.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"mttf\": \"{}\", \"makespan_ns\": {}, \
             \"baseline_ns\": {}, \"slowdown\": {:.4}, \"retries\": {}, \
             \"detected\": {}, \"reconstructs\": {}}}{}\n",
            json_escape(r.workload),
            json_escape(r.mttf),
            r.makespan.0,
            r.baseline.0,
            r.slowdown(),
            r.retries,
            r.detected,
            r.reconstructs,
            if i + 1 < chaos.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    // Virtual-time only, like the chaos section — CI diffs two runs of
    // this section to police serving determinism. The chaos-under-load
    // record nests inside it as `serving.chaos` (emitted alone when
    // only the chaos-serve sweep ran).
    match (serving, chaos_serve) {
        (None, None) => out.push_str("  \"serving\": null\n"),
        (None, Some(cs)) => {
            out.push_str("  \"serving\": {\n");
            push_serving_chaos(&mut out, cs);
            out.push_str("  }\n");
        }
        (Some(rec), cs) => {
            out.push_str("  \"serving\": {\n");
            out.push_str(&format!(
                "    \"tenants\": {}, \"requests\": {}, \"seed\": {},\n",
                rec.tenants, rec.requests, rec.seed
            ));
            out.push_str("    \"sweep\": [\n");
            for (i, r) in rec.sweep.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"load\": \"{}\", \"mean_gap_ns\": {}, \"offered\": {}, \
                     \"admitted\": {}, \"rejected\": {}, \"makespan_ns\": {}, \
                     \"p50_ns\": {}, \"p99_ns\": {}, \"peak_util\": {:.6}}}{}\n",
                    json_escape(r.load),
                    r.mean_gap.0,
                    r.offered,
                    r.admitted,
                    r.rejected,
                    r.makespan.0,
                    r.p50.0,
                    r.p99.0,
                    r.peak_util,
                    if i + 1 < rec.sweep.len() { "," } else { "" },
                ));
            }
            out.push_str("    ],\n");
            out.push_str(&format!(
                "    \"knee\": {{\"load\": \"{}\", \"mean_gap_ns\": {}, \"p99_ns\": {}}},\n",
                json_escape(rec.sweep[rec.knee].load),
                rec.sweep[rec.knee].mean_gap.0,
                rec.sweep[rec.knee].p99.0,
            ));
            out.push_str("    \"knee_tenants\": [\n");
            for (i, t) in rec.knee_tenants.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"tenant\": {}, \"offered\": {}, \"admitted\": {}, \
                     \"rejected\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"slo_met\": {}}}{}\n",
                    t.tenant,
                    t.offered,
                    t.admitted,
                    t.rejected,
                    t.p50.0,
                    t.p99.0,
                    t.slo_met,
                    if i + 1 < rec.knee_tenants.len() { "," } else { "" },
                ));
            }
            out.push_str("    ],\n");
            out.push_str("    \"util_curve\": [\n");
            for (i, (at, frac)) in rec.util_curve.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"at_ns\": {}, \"frac\": {:.6}}}{}\n",
                    at.0,
                    frac,
                    if i + 1 < rec.util_curve.len() { "," } else { "" },
                ));
            }
            out.push_str("    ],\n");
            // Request-centric tail attribution at the knee: per tenant,
            // the exact p99, the five-component breakdown (sums to the
            // tenant's total request time), exemplar request ids, and
            // the SLO burn curve. Virtual-time only, byte-identical
            // across runs and shard counts.
            out.push_str("    \"tail_attribution\": [\n");
            for (i, ta) in rec.tail_attribution.iter().enumerate() {
                let a = &ta.total;
                let exemplars: Vec<String> =
                    ta.exemplars.iter().map(u64::to_string).collect();
                out.push_str(&format!(
                    "      {{\"tenant\": {}, \"requests\": {}, \"p99_ns\": {}, \
                     \"admission_ns\": {}, \"queue_ns\": {}, \"compute_ns\": {}, \
                     \"transfer_ns\": {}, \"recovery_ns\": {}, \"dominant\": \"{}\", \
                     \"exemplars\": [{}], \"burn\": [",
                    ta.tenant,
                    ta.requests,
                    ta.p99.0,
                    a.admission.0,
                    a.queue.0,
                    a.compute.0,
                    a.transfer.0,
                    a.recovery.0,
                    ta.dominant.name(),
                    exemplars.join(", "),
                ));
                let burn = rec
                    .burn
                    .iter()
                    .find(|b| b.tenant == ta.tenant)
                    .map(|b| b.windows.as_slice())
                    .unwrap_or(&[]);
                for (j, w) in burn.iter().enumerate() {
                    out.push_str(&format!(
                        "{}{{\"start_ns\": {}, \"end_ns\": {}, \"good\": {}, \"bad\": {}, \
                         \"rate\": {:.4}}}",
                        if j == 0 { "" } else { ", " },
                        w.start.0,
                        w.end.0,
                        w.good,
                        w.bad,
                        w.burn_rate(),
                    ));
                }
                out.push_str(&format!(
                    "]}}{}\n",
                    if i + 1 < rec.tail_attribution.len() { "," } else { "" },
                ));
            }
            out.push_str("    ],\n");
            match cs {
                None => out.push_str("    \"chaos\": null\n"),
                Some(cs) => push_serving_chaos(&mut out, cs),
            }
            out.push_str("  }\n");
        }
    }
    out.push_str("}\n");
    out
}

/// Emits the `serving.chaos` object body (the chaos-under-load sweep):
/// per (load, variant) row, admission/shed/degrade/fast-fail counts,
/// SLO goodput, breaker trips, the fault window, and burn
/// during/after with the measured recovery. All fields virtual-time.
fn push_serving_chaos(out: &mut String, rec: &ChaosServeRecord) {
    out.push_str("    \"chaos\": {\n");
    out.push_str(&format!(
        "      \"tenants\": {}, \"requests\": {}, \"seed\": {}, \"slo_p99_ns\": {},\n",
        rec.tenants, rec.requests, rec.seed, rec.slo_p99.0
    ));
    out.push_str("      \"rows\": [\n");
    for (i, r) in rec.rows.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"load\": \"{}\", \"controls\": {}, \"mean_gap_ns\": {}, \
             \"offered\": {}, \"admitted\": {}, \"rejected\": {}, \"shed\": {}, \
             \"degraded\": {}, \"fast_failed\": {}, \"goodput\": {}, \"p99_ns\": {}, \
             \"makespan_ns\": {}, \"breaker_trips\": {}, \"fault_start_ns\": {}, \
             \"fault_end_ns\": {}, \"burn_during\": {:.4}, \"burn_after\": {:.4}, \
             \"recovered\": {}, \"recovery_ns\": {}}}{}\n",
            json_escape(r.load),
            r.controls,
            r.mean_gap.0,
            r.offered,
            r.admitted,
            r.rejected,
            r.shed,
            r.degraded,
            r.fast_failed,
            r.goodput,
            r.p99.0,
            r.makespan.0,
            r.breaker_trips,
            r.fault_start.0,
            r.fault_end.0,
            r.burn_during,
            r.burn_after,
            r.recovered,
            r.recovery.0,
            if i + 1 < rec.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("      ]\n    }\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let doubled = sweep(items.clone(), 8, |i| i * 2);
        assert_eq!(doubled, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        let serial = sweep(items.clone(), 1, |i| i * 2);
        assert_eq!(doubled, serial);
    }

    #[test]
    fn stress_batch_is_deterministic() {
        let a = stress_run(2, 3, 3, 1);
        let b = stress_run(2, 3, 3, 1);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, 2 * 3 * 3, "every stress task executes");
        assert!(a.1 >= a.0 as u64, "at least one event per task");
    }

    #[test]
    fn stress_batch_is_shard_invariant() {
        let one = stress_run(2, 3, 3, 1);
        for shards in [2, 4] {
            let n = stress_run(2, 3, 3, shards);
            assert_eq!(n.0, one.0, "task count diverged at {shards} shards");
            assert_eq!(n.1, one.1, "event count diverged at {shards} shards");
        }
    }

    #[test]
    fn shard_scaling_rows_carry_invariant_counts() {
        let rows = measure_shard_scaling(2, 3, 3, 1, &[1, 2, 4]);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.name == "j2_l3_w3"));
        assert_eq!(rows[0].shards, 1);
        assert!(rows.iter().all(|r| r.tasks == rows[0].tasks));
        assert!(rows.iter().all(|r| r.events == rows[0].events));
    }

    #[test]
    fn bench_json_is_well_formed_enough() {
        let thru = vec![Throughput {
            name: "j4_l8_w8".into(),
            tasks: 256,
            events: 1024,
            wall: Duration::from_millis(2),
        }];
        let exps = vec![ExpResult {
            id: "table1",
            output: String::new(),
            wall: Duration::from_millis(1),
        }];
        let chaos = vec![ChaosRow {
            workload: "dbms",
            mttf: "0.50T",
            makespan: SimDuration(3_000),
            baseline: SimDuration(2_000),
            retries: 2,
            detected: 1,
            reconstructs: 1,
        }];
        let scaling = vec![
            ShardScalingRow {
                name: "j4_l8_w8".into(),
                shards: 1,
                tasks: 256,
                events: 1024,
                wall: Duration::from_millis(4),
            },
            ShardScalingRow {
                name: "j4_l8_w8".into(),
                shards: 4,
                tasks: 256,
                events: 1024,
                wall: Duration::from_millis(1),
            },
        ];
        let serving = ServingRecord {
            tenants: 2,
            requests: 8,
            seed: 7,
            sweep: vec![crate::exp::serving::ServingRow {
                load: "1.00x",
                mean_gap: SimDuration(1_000),
                offered: 8,
                admitted: 7,
                rejected: 1,
                makespan: SimDuration(9_000),
                p50: SimDuration(2_000),
                p99: SimDuration(5_000),
                peak_util: 0.125,
            }],
            knee: 0,
            knee_tenants: vec![crate::exp::serving::TenantRow {
                tenant: 0,
                offered: 8,
                admitted: 7,
                rejected: 1,
                p50: SimDuration(2_000),
                p99: SimDuration(5_000),
                slo_met: true,
            }],
            util_curve: vec![(SimDuration::ZERO, 0.0), (SimDuration(4_500), 0.125)],
            tail_attribution: vec![disagg_obs::TenantAttribution {
                tenant: 0,
                requests: 7,
                total: disagg_obs::Attribution {
                    admission: SimDuration(100),
                    queue: SimDuration(5_000),
                    compute: SimDuration(3_000),
                    transfer: SimDuration(400),
                    recovery: SimDuration(0),
                },
                p99: SimDuration(5_000),
                exemplars: vec![3, 5],
                dominant: disagg_obs::SegmentKind::Queue,
            }],
            burn: vec![disagg_obs::TenantBurn {
                tenant: 0,
                windows: vec![disagg_obs::BurnWindow {
                    start: disagg_hwsim::time::SimTime(0),
                    end: disagg_hwsim::time::SimTime(4_500),
                    good: 6,
                    bad: 1,
                }],
            }],
        };
        let chaos_serve = crate::exp::chaos_serve::ChaosServeRecord {
            tenants: 2,
            requests: 8,
            seed: 7,
            slo_p99: SimDuration(16_000),
            rows: vec![crate::exp::chaos_serve::ChaosServeRow {
                load: "1.00x",
                mean_gap: SimDuration(1_000),
                controls: true,
                offered: 8,
                admitted: 6,
                rejected: 1,
                shed: 1,
                degraded: 2,
                fast_failed: 1,
                goodput: 5,
                p99: SimDuration(5_000),
                makespan: SimDuration(9_000),
                breaker_trips: 3,
                fault_start: disagg_hwsim::time::SimTime(2_000),
                fault_end: disagg_hwsim::time::SimTime(4_000),
                burn_during: 7.5,
                burn_after: 0.25,
                recovered: true,
                recovery: SimDuration(1_500),
            }],
        };
        let s = bench_json(
            &exps,
            &thru,
            &scaling,
            &chaos,
            Some(&serving),
            Some(&chaos_serve),
            true,
            4,
        );
        assert!(s.contains("\"schema\": \"disagg-bench-v1\""));
        assert!(s.contains("\"serving\": {"));
        assert!(s.contains("\"knee\": {\"load\": \"1.00x\""));
        assert!(s.contains("\"tail_attribution\": ["));
        assert!(s.contains("\"dominant\": \"queue\""));
        assert!(s.contains("\"exemplars\": [3, 5]"));
        assert!(s.contains("\"rate\": 14.2857"), "1 bad of 7 burns ~14x the 1% budget");
        assert!(s.contains("\"peak_util\": 0.125000"));
        assert!(s.contains("\"slo_met\": true"));
        assert!(s.contains("\"chaos\": {"));
        assert!(s.contains("\"breaker_trips\": 3"));
        assert!(s.contains("\"burn_during\": 7.5000"));
        assert!(s.contains("\"recovered\": true"));
        assert!(s.contains("\"recovery_ns\": 1500"));
        let without = bench_json(&exps, &thru, &scaling, &chaos, None, None, true, 4);
        assert!(without.contains("\"serving\": null"));
        assert_eq!(without.matches('{').count(), without.matches('}').count());
        let chaos_only = bench_json(
            &exps,
            &thru,
            &scaling,
            &chaos,
            Some(&serving),
            None,
            true,
            4,
        );
        assert!(chaos_only.contains("\"chaos\": null"));
        assert_eq!(chaos_only.matches('{').count(), chaos_only.matches('}').count());
        assert!(s.contains("\"name\": \"j4_l8_w8\""));
        assert!(s.contains("\"speedup_vs_seed\""));
        assert!(s.contains("\"shard_scaling\""));
        assert!(s.contains("\"speedup_vs_1shard\": 4.00"));
        assert!(s.contains("\"id\": \"table1\""));
        assert!(s.contains("\"workload\": \"dbms\""));
        assert!(s.contains("\"slowdown\": 1.5000"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }
}
