//! E2 — Table 2: the predefined region types resolve to devices that
//! satisfy their property bundles.
//!
//! For each of the paper's three named regions (Global State, Global
//! Scratch, Private Scratch) we ask the placement optimizer for a device
//! — once from the CPU and once from the GPU — and audit the chosen
//! device against the bundle. The assertable shape: placements differ by
//! executing device exactly where Table 2's properties allow it, and no
//! placement violates its bundle.

use disagg_hwsim::ids::ComputeId;
use disagg_hwsim::presets::single_server;
use disagg_region::pool::MemoryPool;
use disagg_region::typed::RegionType;
use disagg_sched::placement::{PlacementEngine, PlacementPolicy};

use crate::Table;

/// One resolved row: region type × executing device → chosen device.
#[derive(Debug, Clone)]
pub struct Resolution {
    /// Region type name.
    pub region: &'static str,
    /// Executing compute device name.
    pub from: &'static str,
    /// Chosen memory device name.
    pub device: String,
    /// Whether the bundle is satisfied on the chosen device.
    pub satisfied: bool,
}

/// Resolves each Table 2 region type from the CPU and the GPU.
pub fn resolve(size: u64) -> Vec<Resolution> {
    let (topo, h) = single_server();
    let pool = MemoryPool::new(&topo);
    let mut engine = PlacementEngine::new(PlacementPolicy::Declarative);
    let mut out = Vec::new();
    let computes: [(ComputeId, &str); 2] = [(h.cpu, "CPU"), (h.gpu, "GPU")];
    for rtype in RegionType::TABLE2 {
        for &(c, cname) in &computes {
            let props = rtype.properties();
            let dev = engine
                .choose(&topo, &pool, c, &props, size)
                .expect("single_server satisfies every Table 2 bundle");
            let path = topo.path(c, dev).expect("chosen devices are reachable");
            out.push(Resolution {
                region: rtype.name(),
                from: cname,
                device: topo.mem(dev).kind.name().to_string(),
                satisfied: props.satisfied_by(topo.mem(dev), path),
            });
        }
    }
    out
}

/// Runs E2.
pub fn run(_quick: bool) -> Table {
    let rows = resolve(32 << 20);
    let mut t = Table::new(
        "table2",
        "Table 2: Common Memory Regions resolved by the runtime",
        &["Region", "From", "Chosen device", "Bundle satisfied"],
    );
    for r in &rows {
        t.row(vec![
            r.region.to_string(),
            r.from.to_string(),
            r.device.clone(),
            if r.satisfied { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.note("Global State {coherent, sync}; Global Scratch {coherent, async}; Private Scratch {noncoherent, sync}");
    t.note("private scratch is device-relative: DRAM-class under the CPU, GDDR under the GPU");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bundle_is_satisfied() {
        assert!(resolve(32 << 20).iter().all(|r| r.satisfied));
    }

    #[test]
    fn private_scratch_follows_the_executing_device() {
        let rows = resolve(1 << 30);
        let find = |region: &str, from: &str| {
            rows.iter()
                .find(|r| r.region == region && r.from == from)
                .unwrap()
                .device
                .clone()
        };
        assert_eq!(find("Private Scratch", "CPU"), "DRAM");
        assert_eq!(find("Private Scratch", "GPU"), "GDDR");
    }

    #[test]
    fn shared_region_types_land_on_coherent_devices() {
        let (topo, _) = single_server();
        for r in resolve(32 << 20) {
            if r.region != "Private Scratch" {
                let dev = topo
                    .mem_devices()
                    .iter()
                    .find(|m| m.kind.name() == r.device)
                    .unwrap();
                assert!(dev.coherent, "{} on non-coherent {}", r.region, r.device);
            }
        }
    }

    #[test]
    fn table_has_six_rows() {
        let t = run(true);
        assert_eq!(t.rows.len(), 6);
    }
}
