//! E9 — the §1 claim "a naïve data placement in a heterogeneous storage
//! landscape can reduce a database system's performance by up to 3×".
//!
//! The cited system (Mosaic) places database columns across
//! DRAM/PMem/SSD tiers under a budget; a bad placement strands the hot
//! working set a tier below where it belongs. We reproduce the shape
//! directly: the same scan + probe query runs against the working set
//! placed on each tier, and against the placements chosen by the
//! declarative optimizer vs the naïve baselines.

use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::contention::BandwidthLedger;
use disagg_hwsim::device::AccessPattern;
use disagg_hwsim::ids::MemDeviceId;
use disagg_hwsim::presets::hetero_storage_server;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::trace::Trace;
use disagg_region::access::Accessor;
use disagg_region::props::{AccessMode, PropertySet};
use disagg_region::region::{OwnerId, RegionManager};
use disagg_region::typed::RegionType;
use disagg_sched::placement::{PlacementEngine, PlacementPolicy};

use crate::{fmt_dur, fmt_ratio, Table};

/// One tier's query cost.
#[derive(Debug, Clone)]
pub struct TierRow {
    /// Tier label.
    pub tier: String,
    /// Time for the query mix against the working set on this tier.
    pub time: SimDuration,
}

const WHO: OwnerId = OwnerId::App;

/// Runs the query mix (one full scan + `probes` random point lookups +
/// per-tuple compute) against a working set on `dev`.
fn query_time(
    topo: &disagg_hwsim::topology::Topology,
    cpu: disagg_hwsim::ids::ComputeId,
    dev: MemDeviceId,
    bytes: u64,
    probes: u64,
) -> SimDuration {
    let mut mgr = RegionManager::new(topo);
    let props = PropertySet::new().with_mode(AccessMode::Async);
    let ws = mgr
        .alloc(dev, bytes, RegionType::GlobalScratch, props, WHO, SimTime::ZERO)
        .expect("working set fits");
    let mut ledger = BandwidthLedger::default_buckets();
    let mut trace = Trace::disabled();
    let mut acc = Accessor::new(topo, &mut ledger, &mut mgr, &mut trace, cpu, WHO, SimTime::ZERO);

    // Scan: stream the set in 1 MiB chunks, filtering as we go.
    let chunk = 1u64 << 20;
    let mut buf = vec![0u8; chunk as usize];
    for off in (0..bytes).step_by(chunk as usize) {
        let take = chunk.min(bytes - off) as usize;
        acc.async_read(ws, off, &mut buf[..take], AccessPattern::Sequential)
            .expect("scan read");
        // Per-tuple predicate work (16-byte tuples, Scalar).
        acc.overlap_compute(WorkClass::Scalar, take as u64 / 16 / 8);
        acc.wait_async();
    }
    // Point lookups (index probes into the same working set).
    let mut probe_buf = [0u8; 64];
    for i in 0..probes {
        let off = (i * 7_919) % (bytes - 64);
        acc.read(ws, off, &mut probe_buf, AccessPattern::Random)
            .expect("probe read");
        acc.compute_work(WorkClass::Scalar, 20);
    }
    acc.now - SimTime::ZERO
}

/// Measures the query mix per tier, plus the tiers the placement
/// policies would pick.
pub fn measure(quick: bool) -> (Vec<TierRow>, Vec<(String, String)>) {
    let (topo, h) = hetero_storage_server();
    let bytes: u64 = if quick { 16 << 20 } else { 256 << 20 };
    let probes: u64 = if quick { 2_000 } else { 20_000 };

    let tiers = [(h.dram, "DRAM"), (h.pmem, "PMem"), (h.ssd, "SSD")];
    let rows: Vec<TierRow> = tiers
        .iter()
        .map(|&(dev, name)| TierRow {
            tier: name.to_string(),
            time: query_time(&topo, h.cpu, dev, bytes, probes),
        })
        .collect();

    // Which tier does each policy put the working set on?
    let props = PropertySet::new().with_mode(AccessMode::Async);
    let pool = disagg_region::pool::MemoryPool::new(&topo);
    let picks: Vec<(String, String)> = [
        ("declarative optimizer", PlacementPolicy::Declarative),
        ("first-fit (no cost model)", PlacementPolicy::FirstFit),
        ("worst feasible (naive bound)", PlacementPolicy::WorstFeasible),
    ]
    .iter()
    .map(|&(name, policy)| {
        let mut engine = PlacementEngine::new(policy);
        let dev = engine
            .choose(&topo, &pool, h.cpu, &props, bytes)
            .expect("feasible");
        (name.to_string(), topo.mem(dev).kind.name().to_string())
    })
    .collect();
    (rows, picks)
}

/// Runs E9.
pub fn run(quick: bool) -> Table {
    let (rows, picks) = measure(quick);
    let best = rows
        .iter()
        .map(|r| r.time.as_nanos_f64())
        .fold(f64::INFINITY, f64::min);
    let mut t = Table::new(
        "naive",
        "Claim: naive placement in heterogeneous storage costs up to 3x",
        &["Working set on", "Query mix time", "vs best tier"],
    );
    for r in &rows {
        t.row(vec![
            r.tier.clone(),
            fmt_dur(r.time),
            fmt_ratio(r.time.as_nanos_f64() / best),
        ]);
    }
    for (policy, pick) in &picks {
        t.note(format!("{policy} places the working set on {pick}"));
    }
    t.note("paper cites Mosaic [59]: a tier-misplaced working set costs up to 3x (and worse further down)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_tier_down_costs_at_least_3x() {
        let (rows, _) = measure(true);
        let time = |n: &str| rows.iter().find(|r| r.tier == n).unwrap().time.as_nanos_f64();
        let dram = time("DRAM");
        let pmem = time("PMem");
        let ssd = time("SSD");
        assert!(
            pmem / dram >= 3.0,
            "PMem/DRAM = {:.2}, expected >= 3x",
            pmem / dram
        );
        assert!(ssd > pmem, "each further tier must cost more");
    }

    #[test]
    fn the_optimizer_picks_the_fast_tier_and_the_adversary_does_not() {
        let (_, picks) = measure(true);
        let pick = |name: &str| {
            picks
                .iter()
                .find(|(p, _)| p.starts_with(name))
                .unwrap()
                .1
                .clone()
        };
        assert_eq!(pick("declarative"), "DRAM");
        assert_ne!(pick("worst feasible"), "DRAM");
    }

    #[test]
    fn query_results_do_not_depend_on_tier() {
        // Same bytes in, same bytes out — tiers change time only. (The
        // Accessor round-trips real data; a quick spot check.)
        let (topo, h) = hetero_storage_server();
        let mut mgr = RegionManager::new(&topo);
        let props = PropertySet::new().with_mode(AccessMode::Async);
        for dev in [h.dram, h.ssd] {
            let r = mgr
                .alloc(dev, 4096, RegionType::GlobalScratch, props.clone(), WHO, SimTime::ZERO)
                .unwrap();
            mgr.write(r, WHO, 0, b"same bytes").unwrap();
            let mut buf = [0u8; 10];
            mgr.read(r, WHO, 0, &mut buf).unwrap();
            assert_eq!(&buf, b"same bytes");
        }
    }
}
