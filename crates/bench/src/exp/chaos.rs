//! E16 — chaos sweep: makespan under injected faults vs. a fault-free
//! baseline, across an MTTF sweep and three workloads.
//!
//! Each sweep point runs the same job on the same rack with a
//! deterministic fault plan derived from the fault-free makespan `T`:
//! node crash/recover pairs spaced `MTTF` apart (rotating through the
//! compute nodes, each repaired after `MTTF/4`), one corruption burst on
//! the first pool blade, and one degraded-fabric window at quarter
//! bandwidth. Everything — fault times, detection, backoff, re-placement
//! — is virtual time, so two runs of the sweep are byte-identical.

use disagg_core::prelude::{Runtime, RuntimeConfig};
use disagg_core::RecoveryPolicy;
use disagg_dataflow::job::JobSpec;
use disagg_hwsim::device::{AccessOp, AccessPattern};
use disagg_hwsim::fault::{FaultInjector, FaultKind};
use disagg_hwsim::presets::{disaggregated_rack, Rack};
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::topology::Topology;
use disagg_hwsim::trace::TraceEvent;
use disagg_workloads::dbms::{query_job, DbmsConfig};
use disagg_workloads::ml::{training_job, MlConfig};
use disagg_workloads::streaming::{windowed_job, StreamConfig};

use crate::{fmt_dur, Table};

/// One (workload, MTTF) sweep point.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Workload label ("dbms", "ml", "stream").
    pub workload: &'static str,
    /// MTTF label relative to the fault-free makespan ("none", "1.00T", ...).
    pub mttf: &'static str,
    /// Makespan of this run (faulty or baseline).
    pub makespan: SimDuration,
    /// Fault-free makespan of the same workload.
    pub baseline: SimDuration,
    /// Task retries the recovery loop performed.
    pub retries: u64,
    /// Faults the runtime detected mid-task.
    pub detected: u64,
    /// Online reconstructions (corrupt reads healed + re-replications).
    pub reconstructs: u64,
}

impl ChaosRow {
    /// Makespan relative to the fault-free run.
    pub fn slowdown(&self) -> f64 {
        self.makespan.as_nanos_f64() / self.baseline.as_nanos_f64()
    }
}

/// A workload builder: `quick` in, a fresh job out.
type JobFn = fn(bool) -> JobSpec;

/// The three workloads of the sweep. Function pointers because
/// [`JobSpec`] bodies are one-shot: every run rebuilds its job.
fn workloads() -> Vec<(&'static str, JobFn)> {
    fn dbms(quick: bool) -> JobSpec {
        query_job(DbmsConfig {
            tuples: if quick { 2_000 } else { 20_000 },
            probe_tuples: if quick { 1_000 } else { 10_000 },
            ..DbmsConfig::default()
        })
    }
    fn ml(quick: bool) -> JobSpec {
        training_job(MlConfig {
            samples: if quick { 1_024 } else { 4_096 },
            ..MlConfig::default()
        })
    }
    fn stream(quick: bool) -> JobSpec {
        windowed_job(StreamConfig {
            events: if quick { 4_000 } else { 20_000 },
            ..StreamConfig::default()
        })
    }
    vec![("dbms", dbms), ("ml", ml), ("stream", stream)]
}

/// MTTF levels as (label, divisor): `mttf = baseline / divisor`.
fn levels(quick: bool) -> &'static [(&'static str, u64)] {
    if quick {
        &[("0.50T", 2)]
    } else {
        &[("1.00T", 1), ("0.50T", 2), ("0.25T", 4)]
    }
}

/// The recovery policy every sweep point runs with: a real (non-oracle)
/// detector, exponential backoff, and a bounded retry budget.
fn policy() -> RecoveryPolicy {
    RecoveryPolicy::default()
        .with_max_retries(8)
        .with_detection_delay(SimDuration(2_000))
        .with_backoff(SimDuration(1_000))
}

/// Builds the deterministic fault plan for one sweep point: rotating
/// node crash/recover pairs every `mttf` out to twice the fault-free
/// horizon, one corruption burst, one quarter-bandwidth fabric window.
fn chaos_plan(topo: &Topology, rack: &Rack, baseline: SimDuration, mttf: SimDuration) -> FaultInjector {
    let mut f = FaultInjector::none();
    let repair = SimDuration(mttf.0 / 4);
    let mut k = 1u64;
    while k.saturating_mul(mttf.0) < baseline.0.saturating_mul(2) {
        let at = SimTime(k * mttf.0);
        let node = rack.nodes[(k as usize - 1) % rack.nodes.len()];
        f.schedule(at, FaultKind::NodeCrash(node));
        f.schedule(at + repair, FaultKind::NodeRecover(node));
        k += 1;
    }
    // Silent corruption bursts, early enough that the workload still
    // reads through them and pays the online reconstruction. Local DRAM
    // is where declarative placement puts the hot regions; the pool
    // blade covers spill/far-memory placements.
    for dev in [rack.drams[0], rack.pool[0]] {
        f.schedule(SimTime(mttf.0 / 3), FaultKind::Corrupt { dev, offset: 0, len: 4 << 20 });
    }
    // A degraded-fabric window on the CPU→pool bottleneck link.
    if let Some(link) = topo
        .access_cost_parts(rack.cpus[0], rack.pool[0], 1, AccessOp::Read, AccessPattern::Sequential)
        .and_then(|p| p.bottleneck_link)
    {
        f.schedule(SimTime(mttf.0 / 2), FaultKind::LinkDegraded { link, factor_pct: 25 });
        f.schedule(SimTime(mttf.0 / 2 + mttf.0 / 4), FaultKind::LinkUp(link));
    }
    f
}

fn run_once(jobs: Vec<JobSpec>, faults: FaultInjector) -> ChaosRow {
    let (topo, _rack) = disaggregated_rack(4, 16, 4, 256);
    let config = RuntimeConfig::traced().with_faults(faults).with_recovery(policy());
    let mut rt = Runtime::new(topo, config);
    let report = rt.execute(jobs).expect("chaos sweep point completes within its retry budget");
    let (mut retries, mut detected, mut reconstructs) = (0u64, 0u64, 0u64);
    for e in rt.trace().events() {
        match e {
            TraceEvent::TaskRetry { .. } => retries += 1,
            TraceEvent::FaultDetected { .. } => detected += 1,
            TraceEvent::Reconstruct { .. } => reconstructs += 1,
            _ => {}
        }
    }
    ChaosRow {
        workload: "",
        mttf: "",
        makespan: report.makespan,
        baseline: SimDuration::ZERO,
        retries,
        detected,
        reconstructs,
    }
}

/// Runs the full sweep: for each workload, one fault-free baseline plus
/// one faulty run per MTTF level.
pub fn measure(quick: bool) -> Vec<ChaosRow> {
    let mut rows = Vec::new();
    for (name, job) in workloads() {
        let mut base = run_once(vec![job(quick)], FaultInjector::none());
        base.workload = name;
        base.mttf = "none";
        base.baseline = base.makespan;
        let baseline = base.makespan;
        rows.push(base);
        for &(label, divisor) in levels(quick) {
            let mttf = SimDuration(baseline.0 / divisor);
            let (topo, rack) = disaggregated_rack(4, 16, 4, 256);
            let plan = chaos_plan(&topo, &rack, baseline, mttf);
            let mut row = run_once(vec![job(quick)], plan);
            row.workload = name;
            row.mttf = label;
            row.baseline = baseline;
            rows.push(row);
        }
    }
    rows
}

/// Runs E16.
pub fn run(quick: bool) -> Table {
    let rows = measure(quick);
    let mut t = Table::new(
        "chaos",
        "Chaos sweep: makespan under faults vs. fault-free baseline",
        &["Workload", "MTTF", "Makespan", "Baseline", "Slowdown", "Retries", "Detected", "Reconstructs"],
    );
    for r in &rows {
        t.row(vec![
            r.workload.to_string(),
            r.mttf.to_string(),
            fmt_dur(r.makespan),
            fmt_dur(r.baseline),
            format!("{:.2}x", r.slowdown()),
            r.retries.to_string(),
            r.detected.to_string(),
            r.reconstructs.to_string(),
        ]);
    }
    t.note("fault plan is derived from the fault-free makespan T; all detection/backoff/retry is virtual time, so the sweep is bit-for-bit deterministic");
    t.note("shorter MTTF -> more crash/recover cycles and retries; the corruption burst and degraded-link window also scale with MTTF, so slowdown is not monotone in it");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point<'a>(rows: &'a [ChaosRow], w: &str, m: &str) -> &'a ChaosRow {
        rows.iter().find(|r| r.workload == w && r.mttf == m).unwrap()
    }

    #[test]
    fn every_workload_has_a_baseline_and_sweep_points() {
        let rows = measure(true);
        for w in ["dbms", "ml", "stream"] {
            let base = point(&rows, w, "none");
            assert_eq!(base.makespan, base.baseline);
            assert_eq!(base.retries, 0, "{w}: fault-free run must not retry");
            assert_eq!(base.detected, 0);
            let faulty = point(&rows, w, "0.50T");
            assert_eq!(faulty.baseline, base.makespan);
            assert!(faulty.makespan >= base.makespan, "{w}: faults cannot speed a run up");
        }
    }

    #[test]
    fn faults_are_detected_and_retried_somewhere_in_the_sweep() {
        let rows = measure(true);
        let detected: u64 = rows.iter().map(|r| r.detected).sum();
        let retries: u64 = rows.iter().map(|r| r.retries).sum();
        assert!(detected > 0, "the sweep must exercise mid-task fault detection");
        assert!(retries > 0, "the sweep must exercise the retry path");
        assert!(retries >= detected, "every detected fault relaunches at least once");
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = measure(true);
        let b = measure(true);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn table_has_one_row_per_point() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3 * (1 + levels(true).len()));
        assert!(t.cell("dbms", "MTTF").is_some());
    }
}
