//! E5 — Figure 2: the hospital dataflow runs end-to-end with every
//! declared property honored.
//!
//! The table shows, per task, where it ran, where its regions landed,
//! and whether its Figure 2c properties (compute device, confidential,
//! persistent, memory latency) were satisfied — plus the pipeline's
//! verified ground-truth results.

use disagg_core::prelude::*;
use disagg_hwsim::presets::single_server;
use disagg_workloads::hospital::{decode_count, expected, hospital_job, HospitalConfig};
use disagg_workloads::util::final_output;

use crate::{fmt_dur, Table};

/// Runs E5.
pub fn run(quick: bool) -> Table {
    let cfg = HospitalConfig {
        frames: if quick { 4 } else { 16 },
        ..HospitalConfig::default()
    };
    let exp = expected(&cfg);
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let report = rt.execute(hospital_job(cfg)).expect("hospital job runs");

    let mut t = Table::new(
        "fig2",
        "Figure 2: hospital dataflow — tasks, placements, properties",
        &["Task", "Compute", "Scratch on", "Output on", "Duration"],
    );
    for task in report.job_tasks(JobId(0)) {
        let dev_name = |kind: &str| {
            task.placements
                .iter()
                .find(|(k, _, _)| *k == kind)
                .map(|(_, _, d)| rt.topology().mem(*d).kind.name().to_string())
                .unwrap_or_else(|| "-".to_string())
        };
        t.row(vec![
            task.name.clone(),
            rt.topology().compute(task.compute).kind.name().to_string(),
            dev_name("private_scratch"),
            dev_name("output"),
            fmt_dur(task.duration()),
        ]);
    }

    // Only the persistent alert output survives the job (the lifetime
    // rule frees everything else), so it is the verification point.
    let patients = decode_count(&final_output(&rt, &report, JobId(0), "alert-caregivers"));
    t.note(format!(
        "verified: {} patients alerted == ground truth {} (of {} recognized faces)",
        patients, exp.patients, exp.faces
    ));
    t.note(format!(
        "placement audit: {} checks, {} violations",
        report.placements.len(),
        report.violations.len()
    ));
    t.note("T5's output is persistent: it survives the job on PMem-class memory");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hospital_table_has_five_tasks_and_clean_audit() {
        let t = run(true);
        assert_eq!(t.rows.len(), 5);
        assert!(t.notes.iter().any(|n| n.contains("0 violations")), "{:?}", t.notes);
    }

    #[test]
    fn gpu_tasks_show_gddr_scratch() {
        let t = run(true);
        assert_eq!(t.cell("face-recognition", "Compute"), Some("GPU"));
        assert_eq!(t.cell("face-recognition", "Scratch on"), Some("GDDR"));
        assert_eq!(t.cell("preprocessing", "Scratch on"), Some("GDDR"));
    }

    #[test]
    fn persistent_output_lands_on_persistent_device() {
        let t = run(true);
        let out = t.cell("alert-caregivers", "Output on").unwrap();
        assert!(out == "PMem" || out == "SSD" || out == "HDD" || out == "CXL-DRAM",
            "alert output on {out}");
        // In this topology PMem is the only sync persistent device.
        assert_eq!(out, "PMem");
    }
}
