//! E10 — the §2.2(3) claim: near memory wants synchronous loads/stores;
//! far memory wants an asynchronous interface.
//!
//! The workload fetches P random 4 KiB pages and runs a little compute
//! per page. Synchronously, every fetch pays the full device latency in
//! series. Asynchronously, fetches pipeline: all but one latency is
//! hidden and the stream becomes bandwidth-bound — but every issued
//! operation pays a fixed software toll (submission + completion
//! handling). The crossover the paper predicts falls out: for DRAM the
//! toll eats the win and sync is the right interface; the farther the
//! device, the more latency pipelining buys.

use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::contention::BandwidthLedger;
use disagg_hwsim::ids::MemDeviceId;
use disagg_hwsim::presets::single_server;
use disagg_hwsim::rng::SimRng;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::trace::Trace;
use disagg_region::access::Accessor;
use disagg_region::props::PropertySet;
use disagg_region::region::{OwnerId, RegionManager};
use disagg_region::typed::RegionType;

use crate::{fmt_dur, fmt_ratio, Table};

/// One device tier's sync-vs-async measurement.
#[derive(Debug, Clone)]
pub struct TierRow {
    /// Device name.
    pub device: String,
    /// Synchronous elapsed time.
    pub sync: SimDuration,
    /// Asynchronous (pipelined) elapsed time.
    pub asynk: SimDuration,
}

impl TierRow {
    /// sync / async improvement factor (< 1 means sync wins).
    pub fn gain(&self) -> f64 {
        self.sync.as_nanos_f64() / self.asynk.as_nanos_f64()
    }
}

const WHO: OwnerId = OwnerId::App;
const PAGE: u64 = 4096;

/// Measures both interfaces on every tier.
pub fn measure(quick: bool) -> Vec<TierRow> {
    let (topo, h) = single_server();
    let pages: u64 = if quick { 256 } else { 4_096 };
    let region_bytes = 64 << 20;
    let compute_per_page: u64 = 20; // Scalar elements (~20 ns on a CPU).

    let tiers: [(MemDeviceId, &str); 4] = [
        (h.dram, "DRAM"),
        (h.cxl, "CXL-DRAM"),
        (h.far, "Disagg. Mem."),
        (h.ssd, "SSD"),
    ];
    tiers
        .iter()
        .map(|&(dev, name)| {
            let mut mgr = RegionManager::new(&topo);
            let region = mgr
                .alloc(dev, region_bytes, RegionType::GlobalScratch, PropertySet::new(), WHO, SimTime::ZERO)
                .expect("tier allocable");
            let mut offsets = SimRng::new(7 + dev.0 as u64);
            let offs: Vec<u64> = (0..pages)
                .map(|_| offsets.next_below(region_bytes / PAGE) * PAGE)
                .collect();
            let mut buf = vec![0u8; PAGE as usize];

            // Synchronous: fetch page, compute, repeat.
            let sync = {
                let mut ledger = BandwidthLedger::default_buckets();
                let mut trace = Trace::disabled();
                let mut acc = Accessor::new(
                    &topo, &mut ledger, &mut mgr, &mut trace, h.cpu, WHO, SimTime::ZERO,
                );
                for &off in &offs {
                    // Each page fetch is one contiguous access; the
                    // randomness is across pages.
                    acc.read(region, off, &mut buf, disagg_hwsim::device::AccessPattern::Sequential)
                        .expect("read");
                    acc.compute_work(WorkClass::Scalar, compute_per_page);
                }
                acc.now - SimTime::ZERO
            };

            // Asynchronous: issue a window of fetches, overlap the
            // compute, drain, repeat (queue depth 32).
            let asynk = {
                let mut ledger = BandwidthLedger::default_buckets();
                let mut trace = Trace::disabled();
                let mut acc = Accessor::new(
                    &topo, &mut ledger, &mut mgr, &mut trace, h.cpu, WHO, SimTime::ZERO,
                );
                for window in offs.chunks(32) {
                    for &off in window {
                        acc.async_read(
                            region,
                            off,
                            &mut buf,
                            disagg_hwsim::device::AccessPattern::Sequential,
                        )
                        .expect("read");
                    }
                    acc.overlap_compute(WorkClass::Scalar, compute_per_page * window.len() as u64);
                    acc.wait_async();
                }
                acc.now - SimTime::ZERO
            };
            TierRow {
                device: name.to_string(),
                sync,
                asynk,
            }
        })
        .collect()
}

/// Runs E10.
pub fn run(quick: bool) -> Table {
    let rows = measure(quick);
    let mut t = Table::new(
        "async",
        "Claim: sync for near memory, async for far memory (random 4 KiB pages)",
        &["Device", "Sync", "Async (depth 32)", "Async gain"],
    );
    for r in &rows {
        t.row(vec![
            r.device.clone(),
            fmt_dur(r.sync),
            fmt_dur(r.asynk),
            fmt_ratio(r.gain()),
        ]);
    }
    t.note("async pipelining hides per-access latency but pays a fixed issue toll per op");
    t.note("expected shape: ~1x (or below) for DRAM, growing with device distance");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gain(rows: &[TierRow], name: &str) -> f64 {
        rows.iter().find(|r| r.device == name).unwrap().gain()
    }

    #[test]
    fn async_gain_grows_with_distance() {
        let rows = measure(true);
        let dram = gain(&rows, "DRAM");
        let cxl = gain(&rows, "CXL-DRAM");
        let far = gain(&rows, "Disagg. Mem.");
        let ssd = gain(&rows, "SSD");
        assert!(cxl > dram, "CXL {cxl:.2} should beat DRAM {dram:.2}");
        assert!(far > cxl, "far {far:.2} should beat CXL {cxl:.2}");
        assert!(ssd > far, "SSD {ssd:.2} should beat far {far:.2}");
        assert!(far > 2.0, "far-memory async gain {far:.2} should exceed 2x");
    }

    #[test]
    fn near_memory_prefers_sync() {
        let rows = measure(true);
        let dram = gain(&rows, "DRAM");
        assert!(
            dram < 1.15,
            "DRAM should gain little or nothing from async, got {dram:.2}"
        );
    }
}
