//! E18 — chaos under load: the fault-aware serving control plane
//! (retry budgets, circuit breakers, deadline shedding, brownout
//! degradation) against an uncontrolled baseline, swept across offered
//! load with deterministic fault windows injected mid-run.
//!
//! Each sweep point first probes the healthy arrival span `A` of the
//! load level, then derives a fault plan from it — six overlapping
//! node-crash windows rotating over three of the four servers, spanning
//! `[A/4, 0.95A)` — and runs the same
//! seeded request stream twice on identically faulted racks: once with
//! no controls (quota admission only, the pre-control serving path) and
//! once with the full control plane. Goodput here is *SLO goodput*:
//! requests that completed within their tenant's p99 SLO. Everything is
//! virtual time, so the sweep — and the `serving.chaos` section of
//! `BENCH_disagg.json` it feeds — is byte-identical across runs and
//! shard counts.

use disagg_core::prelude::{Runtime, RuntimeConfig};
use disagg_core::{BreakerPolicy, FaultControlPolicy, RecoveryPolicy, RetryBudgetPolicy};
use disagg_hwsim::fault::{FaultInjector, FaultKind};
use disagg_hwsim::presets::disaggregated_rack;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_serve::{
    ArrivalProcess, ControlPlane, Request, ServeConfig, ServeLayer, Slo, Verdict,
};

use crate::{fmt_dur, Table};

/// One (load, variant) sweep point.
#[derive(Debug, Clone)]
pub struct ChaosServeRow {
    /// Offered-load label relative to service capacity ("1.00x", ...).
    pub load: &'static str,
    /// Mean inter-arrival gap driven at this point.
    pub mean_gap: SimDuration,
    /// Whether the fault-aware control plane was on (`false` = the
    /// uncontrolled baseline on the identical fault plan).
    pub controls: bool,
    /// Requests offered.
    pub offered: usize,
    /// Requests admitted (quota-admitted, including later fast-fails).
    pub admitted: usize,
    /// Requests rejected by quota admission.
    pub rejected: usize,
    /// Requests shed by the deadline check.
    pub shed: usize,
    /// Admitted requests served from a degraded (brownout) template.
    pub degraded: usize,
    /// Admitted requests that failed fast (retry budget or retry cap
    /// under failure isolation).
    pub fast_failed: usize,
    /// SLO goodput: requests completed within their tenant's p99 SLO.
    pub goodput: usize,
    /// Tail sojourn across completed requests.
    pub p99: SimDuration,
    /// Virtual serving horizon of this run.
    pub makespan: SimDuration,
    /// Breaker trips (Closed/HalfOpen → Open transitions) committed.
    pub breaker_trips: usize,
    /// First node crash of the fault plan.
    pub fault_start: SimTime,
    /// Last node recovery of the fault plan.
    pub fault_end: SimTime,
    /// Peak SLO burn rate over windows overlapping the fault windows
    /// (1.0 = burning exactly the 1% error budget).
    pub burn_during: f64,
    /// Peak SLO burn rate over windows entirely after the last
    /// recovery.
    pub burn_after: f64,
    /// Whether burn returned to at or below the 1% budget in some
    /// post-fault window.
    pub recovered: bool,
    /// Virtual time from the last node recovery until the end of the
    /// first post-fault window burning at or below budget (the full
    /// post-fault tail when it never recovers).
    pub recovery: SimDuration,
}

/// The full chaos-under-load record feeding `serving.chaos`.
#[derive(Debug, Clone)]
pub struct ChaosServeRecord {
    /// Tenants in the mix.
    pub tenants: usize,
    /// Requests per sweep point.
    pub requests: usize,
    /// Root seed.
    pub seed: u64,
    /// The p99 SLO every tenant is held to.
    pub slo_p99: SimDuration,
    /// Two rows per load level: baseline first, controls second.
    pub rows: Vec<ChaosServeRow>,
}

impl ChaosServeRecord {
    /// (baseline, controls) row pairs, one per load level.
    pub fn pairs(&self) -> impl Iterator<Item = (&ChaosServeRow, &ChaosServeRow)> {
        self.rows.chunks(2).filter_map(|c| match c {
            [base, ctrl] => Some((base, ctrl)),
            _ => None,
        })
    }
}

/// The chaos mix: the same three request shapes as the serving sweep
/// (point lookup, analytics fan-out, sharded ingest) but compute-bound
/// — every task's body charges real device time via [`ctx.compute`]
/// (the declared `.work(...)` estimate alone is only a scheduler hint),
/// so server compute is the scarce resource. That matters for a
/// node-crash experiment: crashes must interrupt in-flight work and a
/// downed server must translate into lost capacity and queueing, which
/// a transfer-bound mix (where compute sits ~5% utilized) never shows.
/// Each template also carries a degraded (brownout) variant: the same
/// shape at roughly a quarter of the work — a cheaper answer, not a
/// refusal.
pub fn templates() -> ServeLayer {
    use disagg_dataflow::{JobBuilder, TaskSpec};
    use disagg_hwsim::compute::WorkClass;
    fn crunch(class: WorkClass, elems: u64) -> impl Fn(&mut disagg_dataflow::TaskCtx<'_, '_>) -> Result<(), disagg_dataflow::TaskError> + 'static {
        move |ctx| {
            ctx.compute(class, elems);
            Ok(())
        }
    }
    let mut layer = ServeLayer::new();
    layer.register("interactive", |req: &Request| {
        let mut j = JobBuilder::new("interactive");
        let lookup_work = 300_000 + req.seed % 60_000;
        let a = j.task(
            TaskSpec::new("lookup")
                .work(WorkClass::Scalar, lookup_work)
                .output_bytes(1 << 20)
                .body(crunch(WorkClass::Scalar, lookup_work)),
        );
        let b = j.task(
            TaskSpec::new("render")
                .work(WorkClass::Scalar, 150_000)
                .body(crunch(WorkClass::Scalar, 150_000)),
        );
        j.edge(a, b);
        j.build().expect("interactive template is a valid DAG")
    });
    layer.register("analytics", |req: &Request| {
        let mut j = JobBuilder::new("analytics");
        let scan_work = 10_000_000 + req.seed % 2_000_000;
        let scan = j.task(
            TaskSpec::new("scan")
                .work(WorkClass::Vector, scan_work)
                .output_bytes(8 << 20)
                .body(crunch(WorkClass::Vector, scan_work)),
        );
        let agg = j.task(
            TaskSpec::new("agg")
                .work(WorkClass::Vector, 5_000_000)
                .output_bytes(1 << 20)
                .body(crunch(WorkClass::Vector, 5_000_000)),
        );
        for i in 0..3 {
            let part = j.task(
                TaskSpec::new(format!("part{i}"))
                    .work(WorkClass::Vector, 4_000_000)
                    .output_bytes(2 << 20)
                    .body(crunch(WorkClass::Vector, 4_000_000)),
            );
            j.edge(scan, part);
            j.edge(part, agg);
        }
        j.build().expect("analytics template is a valid DAG")
    });
    layer.register("ingest", |req: &Request| {
        let mut j = JobBuilder::new("ingest");
        let recv = j.task(
            TaskSpec::new("recv")
                .work(WorkClass::Scalar, 200_000)
                .output_bytes(16 << 20)
                .body(crunch(WorkClass::Scalar, 200_000)),
        );
        let store = j.task(
            TaskSpec::new("store")
                .work(WorkClass::Scalar, 100_000)
                .body(crunch(WorkClass::Scalar, 100_000)),
        );
        let shard_work = 6_000_000 + req.seed % 1_000_000;
        for i in 0..4 {
            let shard = j.task(
                TaskSpec::new(format!("shard{i}"))
                    .work(WorkClass::Vector, shard_work)
                    .output_bytes(4 << 20)
                    .body(crunch(WorkClass::Vector, shard_work)),
            );
            j.edge(recv, shard);
            j.edge(shard, store);
        }
        j.build().expect("ingest template is a valid DAG")
    });
    layer.register_degraded("interactive", |req: &Request| {
        let mut j = JobBuilder::new("interactive-lite");
        let w = 75_000 + req.seed % 15_000;
        j.task(
            TaskSpec::new("lookup")
                .work(WorkClass::Scalar, w)
                .output_bytes(1 << 20)
                .body(crunch(WorkClass::Scalar, w)),
        );
        j.build().expect("degraded interactive template is a valid DAG")
    });
    layer.register_degraded("analytics", |req: &Request| {
        let mut j = JobBuilder::new("analytics-lite");
        let w = 2_500_000 + req.seed % 500_000;
        let scan = j.task(
            TaskSpec::new("scan")
                .work(WorkClass::Vector, w)
                .output_bytes(2 << 20)
                .body(crunch(WorkClass::Vector, w)),
        );
        let agg = j.task(
            TaskSpec::new("agg")
                .work(WorkClass::Vector, 1_250_000)
                .output_bytes(1 << 20)
                .body(crunch(WorkClass::Vector, 1_250_000)),
        );
        j.edge(scan, agg);
        j.build().expect("degraded analytics template is a valid DAG")
    });
    layer.register_degraded("ingest", |req: &Request| {
        let mut j = JobBuilder::new("ingest-lite");
        let recv = j.task(
            TaskSpec::new("recv")
                .work(WorkClass::Scalar, 50_000)
                .output_bytes(4 << 20)
                .body(crunch(WorkClass::Scalar, 50_000)),
        );
        let store = j.task(
            TaskSpec::new("store")
                .work(WorkClass::Scalar, 25_000)
                .body(crunch(WorkClass::Scalar, 25_000)),
        );
        let w = 1_500_000 + req.seed % 250_000;
        let shard = j.task(
            TaskSpec::new("shard0")
                .work(WorkClass::Vector, w)
                .output_bytes(2 << 20)
                .body(crunch(WorkClass::Vector, w)),
        );
        j.edge(recv, shard);
        j.edge(shard, store);
        j.build().expect("degraded ingest template is a valid DAG")
    });
    layer
}

/// Calibrates the mean healthy service time of the chaos mix: each
/// template instantiated once with a fixed representative request and
/// run alone on the sweep's rack shape.
fn mean_service() -> SimDuration {
    let layer = templates();
    let mut total = SimDuration::ZERO;
    for ti in 0..layer.len() {
        let req = Request {
            index: 0,
            tenant: ti,
            arrival: SimDuration::ZERO,
            seed: 0x5eed ^ ti as u64,
        };
        let job = layer.instantiate(ti, &req);
        let mut rt = Runtime::new(disaggregated_rack(4, 8, 2, 32).0, RuntimeConfig::default());
        total += rt.execute(job).expect("calibration run").makespan;
    }
    SimDuration(total.0 / layer.len().max(1) as u64)
}

/// Offered-load levels as (label, gap divisor): `mean_gap = svc * 4 /
/// divisor` (same convention as the serving sweep).
fn levels(quick: bool) -> &'static [(&'static str, u64)] {
    if quick {
        &[("16.00x", 64), ("24.00x", 96)]
    } else {
        &[("12.00x", 48), ("16.00x", 64), ("24.00x", 96)]
    }
}

/// The recovery policy both variants run with: a real detector,
/// exponential backoff, and a bounded per-task retry cap.
fn recovery() -> RecoveryPolicy {
    RecoveryPolicy::default()
        .with_max_retries(8)
        .with_detection_delay(SimDuration(2_000))
        .with_backoff(SimDuration(1_000))
}

/// The fault-aware executor controls of the controlled variant.
fn fault_control() -> FaultControlPolicy {
    FaultControlPolicy::default()
        .with_retry_budget(RetryBudgetPolicy::default().with_capacity(4))
        .with_breakers(
            BreakerPolicy::default()
                .with_trip_after(2)
                .with_cooldown(SimDuration::from_micros(200)),
        )
        .with_isolation()
}

/// Rotating node-crash windows derived from the arrival span `A` (the
/// last request's arrival time): six crash/recover pairs cycling over
/// three of the four servers (node 3 never fails, so the rack always
/// has healthy capacity), starting at `A/4` with a new window every
/// `A/10`, each `A/5` long — the fault era spans `[A/4, 0.95A)`,
/// strictly inside the arrival span, so every run outlives it and burn
/// has post-fault windows to recover in. Adjacent windows overlap, so
/// stretches of the fault era run with two servers gone — sustained
/// capacity loss and queueing, not just the crash edges, are what the
/// control plane has to survive.
fn fault_plan(span: SimDuration) -> (FaultInjector, SimTime, SimTime) {
    let t = span.0.max(60);
    let down = t / 5;
    let pitch = t / 10;
    let mut f = FaultInjector::none();
    let (_, rack) = disaggregated_rack(4, 8, 2, 32);
    let first = t / 4;
    let mut last_end = first;
    for k in 0..6u64 {
        let node = rack.nodes[(k % 3) as usize];
        let start = first + k * pitch;
        f.schedule(SimTime(start), FaultKind::NodeCrash(node));
        f.schedule(SimTime(start + down), FaultKind::NodeRecover(node));
        last_end = start + down;
    }
    (f, SimTime(first), SimTime(last_end))
}

/// Runs one sweep point and folds the report into a row.
#[allow(clippy::too_many_arguments)]
fn run_point(
    label: &'static str,
    mean_gap: SimDuration,
    controls: bool,
    requests: usize,
    tenants: usize,
    seed: u64,
    slo: Slo,
    span: SimDuration,
) -> ChaosServeRow {
    let (faults, fault_start, fault_end) = fault_plan(span);
    let mut config = RuntimeConfig::traced().with_faults(faults).with_recovery(recovery());
    if controls {
        config = config.with_fault_control(fault_control());
    }
    let (topo, _rack) = disaggregated_rack(4, 8, 2, 32);
    let mut rt = Runtime::new(topo, config);
    let cfg = ServeConfig {
        arrivals: ArrivalProcess::Poisson { mean_gap },
        requests,
        tenants,
        zipf_theta: 1.0,
        seed,
        quota: Some(512u64 << 20),
        slo: Some(slo),
        control: controls.then(ControlPlane::default),
        ..ServeConfig::default()
    };
    let report = templates().run(&mut rt, &cfg).expect("chaos-serve sweep point completes");

    // SLO goodput: completions within the tenant's p99 target. Sheds,
    // rejections, fast-fails, and over-SLO completions all miss it.
    let goodput = report
        .requests
        .iter()
        .filter(|r| {
            r.verdict == Verdict::Completed && r.latency.map(|l| l <= slo.p99).unwrap_or(false)
        })
        .count();
    let breaker_trips = report
        .breaker_transitions
        .iter()
        .filter(|t| t.to == disagg_core::breaker::BreakerState::Open)
        .count();

    // Burn during vs after the fault windows, aggregated across
    // tenants on the shared window grid, expressed against the 1%
    // error budget (1.0 = at budget). Recovery: time from the last
    // node repair to the end of the first post-fault window back at or
    // below budget.
    let grid = report.burn.first().map(|b| b.windows.len()).unwrap_or(0);
    let mut burn_during = 0.0f64;
    let mut burn_after = 0.0f64;
    let mut recovered = false;
    let mut recovery = report.makespan.0.saturating_sub(fault_end.0);
    for w in 0..grid {
        let (mut good, mut bad) = (0u64, 0u64);
        let (mut start, mut end) = (SimTime::ZERO, SimTime::ZERO);
        for tb in &report.burn {
            let win = &tb.windows[w];
            good += win.good;
            bad += win.bad;
            start = win.start;
            end = win.end;
        }
        let total = good + bad;
        let rate = if total == 0 { 0.0 } else { (bad as f64 / total as f64) / 0.01 };
        if start < fault_end && end > fault_start {
            burn_during = burn_during.max(rate);
        }
        if start >= fault_end {
            burn_after = burn_after.max(rate);
            if !recovered && rate <= 1.0 {
                recovered = true;
                recovery = end.0.saturating_sub(fault_end.0);
            }
        }
    }

    ChaosServeRow {
        load: label,
        mean_gap,
        controls,
        offered: report.offered,
        admitted: report.admitted,
        rejected: report.rejected,
        shed: report.shed,
        degraded: report.degraded,
        fast_failed: report.fast_failed,
        goodput,
        p99: report.p99(),
        makespan: report.makespan,
        breaker_trips,
        fault_start,
        fault_end,
        burn_during,
        burn_after,
        recovered,
        recovery: SimDuration(recovery),
    }
}

/// Runs the full chaos-under-load sweep.
pub fn measure(quick: bool) -> ChaosServeRecord {
    let svc = mean_service();
    let tenants = 6;
    let requests = if quick { 36 } else { 72 };
    let seed = 0xfa_0175_u64;
    // p99 at 6× the calibrated mean service: the healthy rack's drain
    // tail rides just under it at 8×, so SLO misses at that load are
    // fault-caused — the uncontrolled baseline only burns when the
    // crash windows steal capacity and stretch the backlog.
    let slo = Slo { p50: SimDuration(svc.0 * 2), p99: SimDuration(svc.0 * 6) };

    let mut rows = Vec::new();
    for &(label, divisor) in levels(quick) {
        let mean_gap = SimDuration((svc.0 * 4) / divisor);
        // Arrival span of this load level, probed on a healthy rack
        // with no controls. The fault plan is anchored to the span
        // rather than the probe's makespan: both variants draw the
        // identical seeded arrival stream, and the last request cannot
        // complete before it arrives, so a fault era strictly inside
        // the span leaves every run — however fast the control plane
        // finishes — with post-fault burn windows to recover in.
        let span = {
            let (topo, _rack) = disaggregated_rack(4, 8, 2, 32);
            let mut rt = Runtime::new(topo, RuntimeConfig::default());
            let cfg = ServeConfig {
                arrivals: ArrivalProcess::Poisson { mean_gap },
                requests,
                tenants,
                zipf_theta: 1.0,
                seed,
                quota: Some(512u64 << 20),
                slo: Some(slo),
                ..ServeConfig::default()
            };
            let probe = templates().run(&mut rt, &cfg).expect("healthy probe");
            probe.requests.iter().map(|r| r.arrival).max().unwrap_or(probe.makespan)
        };
        for controls in [false, true] {
            rows.push(run_point(
                label, mean_gap, controls, requests, tenants, seed, slo, span,
            ));
        }
    }
    ChaosServeRecord { tenants, requests, seed, slo_p99: slo.p99, rows }
}

/// Runs E18.
pub fn run(quick: bool) -> Table {
    let rec = measure(quick);
    let mut t = Table::new(
        "chaos_serve",
        "Chaos under load: fault-aware controls vs uncontrolled baseline (goodput = completions within p99 SLO)",
        &[
            "Load", "Controls", "Offered", "Admitted", "Shed", "Degraded", "FastFail",
            "Goodput", "p99", "Trips", "BurnDuring", "BurnAfter", "Recovery",
        ],
    );
    for r in &rec.rows {
        t.row(vec![
            r.load.to_string(),
            if r.controls { "on".into() } else { "off".into() },
            r.offered.to_string(),
            r.admitted.to_string(),
            r.shed.to_string(),
            r.degraded.to_string(),
            r.fast_failed.to_string(),
            r.goodput.to_string(),
            fmt_dur(r.p99),
            r.breaker_trips.to_string(),
            format!("{:.2}", r.burn_during),
            format!("{:.2}", r.burn_after),
            if r.recovered { fmt_dur(r.recovery) } else { "never".into() },
        ]);
    }
    t.note(format!(
        "{} tenants (Zipf 1.0), {} requests/point, seed {:#x}, p99 SLO {}; six rotating node-crash windows per point anchored to the healthy arrival span",
        rec.tenants,
        rec.requests,
        rec.seed,
        fmt_dur(rec.slo_p99)
    ));
    t.note("burn rates are against the 1% error budget (1.0 = at budget), peak over the shared window grid; all fields are virtual time, so the sweep is bit-for-bit deterministic");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controls_beat_the_uncontrolled_baseline_under_chaos() {
        let rec = measure(true);
        assert_eq!(rec.rows.len(), 2 * levels(true).len());
        let (mut base_total, mut ctrl_total) = (0usize, 0usize);
        for (base, ctrl) in rec.pairs() {
            assert_eq!(base.load, ctrl.load);
            assert!(!base.controls && ctrl.controls);
            assert_eq!(base.breaker_trips, 0, "baseline runs without breakers");
            assert_eq!(base.shed + base.degraded + base.fast_failed, 0);
            base_total += base.goodput;
            ctrl_total += ctrl.goodput;
        }
        assert!(
            ctrl_total > base_total,
            "controls must strictly beat the baseline on SLO goodput: {ctrl_total} vs {base_total}"
        );
        let trips: usize = rec.rows.iter().map(|r| r.breaker_trips).sum();
        assert!(trips > 0, "node crashes must trip breakers in the controlled runs");
    }

    #[test]
    fn burn_recovers_below_budget_after_the_fault_windows() {
        let rec = measure(true);
        for (_, ctrl) in rec.pairs() {
            assert!(
                ctrl.recovered,
                "{}: controlled run must return below the 1% burn budget after the faults",
                ctrl.load
            );
            assert!(ctrl.burn_after <= 1.0, "{}: post-fault burn stays at/below budget", ctrl.load);
            assert!(ctrl.recovery <= SimDuration(ctrl.makespan.0), "recovery window is in-run");
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = measure(true);
        let b = measure(true);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn table_has_two_rows_per_level() {
        let t = run(true);
        assert_eq!(t.rows.len(), 2 * levels(true).len());
    }
}
