//! E4/E11 — Figure 1: compute-centric vs memory-centric architecture,
//! and the pooling-economics claims.
//!
//! The paper motivates disaggregation with two numbers: servers are
//! provisioned for peak so "average memory utilization … remains low,
//! typically in the range of 50-65%", and memory is "50% of Azure's
//! server cost / 40% of Meta's rack cost". We reproduce the comparison:
//!
//! - **Figure 1a (compute-centric)**: every server owns DRAM sized for
//!   the *largest* job it may ever host (peak provisioning); jobs use
//!   their local memory only.
//! - **Figure 1b (memory-centric)**: lean servers in front of a shared
//!   CXL pool sized for the *peak concurrent total* — statistical
//!   multiplexing across skewed jobs.
//!
//! Jobs arrive in waves with Zipf-skewed memory demands; both racks run
//! the same waves. The table reports provisioned capacity, dollar cost,
//! average utilization, and makespan.

use disagg_core::prelude::*;
use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::presets::{compute_centric_rack, cxl_pool_rack};
use disagg_workloads::gen::skewed_demands;

use crate::{fmt_bytes, fmt_dur, Table};

const GIB: u64 = 1 << 30;

/// One architecture's measured outcome.
#[derive(Debug, Clone)]
pub struct ArchResult {
    /// Architecture label.
    pub name: &'static str,
    /// Provisioned memory bytes (DRAM + pool, the capacity you must buy).
    pub provisioned: u64,
    /// Acquisition cost of that memory, dollars.
    pub dollars: f64,
    /// Average utilization of provisioned memory across waves.
    pub avg_utilization: f64,
    /// Total virtual time to run all waves.
    pub total_makespan: SimDuration,
}

fn demand_job(name: String, demand: u64, traffic: u64) -> JobSpec {
    let mut j = JobBuilder::new(name);
    j.task(
        TaskSpec::new("work")
            .work(WorkClass::Scalar, 1_000_000)
            // Working sets this large tolerate pool-class latency; the
            // override is what lets the runtime multiplex them onto CXL.
            .mem_latency(LatencyClass::Medium)
            .private_scratch(demand)
            .body(move |ctx| {
                // Stream a bounded amount of traffic over the working
                // set; the footprint (not the traffic) is what
                // provisioning pays for.
                let scratch = ctx.private_scratch()?;
                let chunk = vec![7u8; (1 << 20).min(traffic) as usize];
                let mut off = 0u64;
                while off < traffic {
                    let at = off % demand.saturating_sub(chunk.len() as u64).max(1);
                    ctx.acc
                        .write(scratch, at, &chunk, AccessPattern::Sequential)?;
                    off += chunk.len() as u64;
                }
                ctx.compute(WorkClass::Scalar, 1_000_000);
                Ok(())
            }),
    );
    j.build().expect("demand job is valid")
}

/// The wave plan shared by both architectures.
pub struct Plan {
    /// Per-job scratch demands (bytes), wave-major.
    pub demands: Vec<u64>,
    /// Jobs per wave (== servers).
    pub servers: usize,
    /// Traffic per job, bytes.
    pub traffic: u64,
}

/// Builds the shared plan.
pub fn plan(quick: bool) -> Plan {
    let servers = 8;
    let waves = if quick { 3 } else { 8 };
    Plan {
        demands: skewed_demands(servers * waves, GIB / 4, 24 * GIB, 1.1, 20_230_622),
        servers,
        traffic: if quick { 8 << 20 } else { 64 << 20 },
    }
}

/// Runs the wave plan on one architecture. `mk_runtime` builds a fresh
/// runtime per wave (so peaks are per-wave); `provisioned` counts the
/// device capacities that the architecture had to buy for job memory.
fn run_waves(
    p: &Plan,
    mut mk_runtime: impl FnMut() -> (Runtime, Vec<disagg_hwsim::ids::MemDeviceId>),
    name: &'static str,
    dollars: f64,
    provisioned: u64,
) -> ArchResult {
    let mut total_makespan = SimDuration::ZERO;
    let mut util_sum = 0.0;
    let mut waves = 0usize;
    for wave in p.demands.chunks(p.servers) {
        let (mut rt, job_devices) = mk_runtime();
        let jobs: Vec<JobSpec> = wave
            .iter()
            .enumerate()
            .map(|(i, &d)| demand_job(format!("job{i}"), d, p.traffic))
            .collect();
        let report = rt.execute(jobs).expect("wave runs");
        total_makespan += report.makespan;
        let used: u64 = report
            .devices
            .iter()
            .filter(|d| job_devices.contains(&d.dev))
            .map(|d| d.peak_bytes)
            .sum();
        util_sum += used as f64 / provisioned as f64;
        waves += 1;
    }
    ArchResult {
        name,
        provisioned,
        dollars,
        avg_utilization: util_sum / waves as f64,
        total_makespan,
    }
}

/// Runs both architectures over the same plan.
pub fn measure(quick: bool) -> (ArchResult, ArchResult) {
    let p = plan(quick);
    let max_demand = *p.demands.iter().max().expect("nonempty plan");
    let total_per_wave: Vec<u64> = p
        .demands
        .chunks(p.servers)
        .map(|w| w.iter().sum())
        .collect();
    let peak_wave_total = *total_per_wave.iter().max().expect("nonempty");

    // Figure 1a: each server's DRAM must fit the largest possible job.
    let static_per_node_gib = max_demand.div_ceil(GIB);
    let static_provisioned = p.servers as u64 * static_per_node_gib * GIB;
    let compute_centric = {
        let (topo0, rack0) = compute_centric_rack(p.servers, static_per_node_gib);
        let dollars: f64 = rack0
            .drams
            .iter()
            .map(|&d| topo0.mem(d).cost_per_gib * (topo0.mem(d).capacity / GIB) as f64)
            .sum();
        run_waves(
            &p,
            || {
                let (topo, rack) = compute_centric_rack(p.servers, static_per_node_gib);
                (
                    Runtime::new(topo, RuntimeConfig::compute_centric()),
                    rack.drams.clone(),
                )
            },
            "Fig 1a compute-centric",
            dollars,
            static_provisioned,
        )
    };

    // Figure 1b: lean local DRAM + a CXL pool sized for the peak wave
    // total (plus 5% headroom), shared by everyone.
    // One logical CXL pool sized for the peak *concurrent* total (plus
    // 8% headroom) — statistical multiplexing means the pool rides the
    // sum, not servers x max. A single pool device also sidesteps
    // bin-packing artifacts; its bandwidth is shared, so pool contention
    // is honestly modeled.
    let local_gib = 1u64;
    let blades = 1usize;
    let blade_gib = ((peak_wave_total as f64 * 1.08 / GIB as f64).ceil() as u64)
        .max(max_demand.div_ceil(GIB));
    let pooled_provisioned =
        p.servers as u64 * local_gib * GIB + blades as u64 * blade_gib * GIB;
    let memory_centric = {
        let (topo0, rack0) = cxl_pool_rack(p.servers, local_gib, blades, blade_gib);
        let job_devs: Vec<_> = rack0
            .drams
            .iter()
            .chain(rack0.pool.iter())
            .copied()
            .collect();
        let dollars: f64 = job_devs
            .iter()
            .map(|&d| topo0.mem(d).cost_per_gib * (topo0.mem(d).capacity / GIB) as f64)
            .sum();
        run_waves(
            &p,
            || {
                let (topo, rack) = cxl_pool_rack(p.servers, local_gib, blades, blade_gib);
                let devs: Vec<_> =
                    rack.drams.iter().chain(rack.pool.iter()).copied().collect();
                (Runtime::new(topo, RuntimeConfig::traced()), devs)
            },
            "Fig 1b memory-centric",
            dollars,
            pooled_provisioned,
        )
    };
    (compute_centric, memory_centric)
}

/// Runs E4 + E11.
pub fn run(quick: bool) -> Table {
    let (a, b) = measure(quick);
    let mut t = Table::new(
        "fig1",
        "Figure 1: compute-centric vs memory-centric rack (pooling economics)",
        &["Architecture", "Provisioned", "Memory $", "Avg utilization", "Makespan (all waves)"],
    );
    for r in [&a, &b] {
        t.row(vec![
            r.name.to_string(),
            fmt_bytes(r.provisioned),
            format!("${:.0}", r.dollars),
            format!("{:.0}%", r.avg_utilization * 100.0),
            fmt_dur(r.total_makespan),
        ]);
    }
    t.note(format!(
        "pooling buys {:.1}x higher utilization at {:.0}% of the memory cost",
        b.avg_utilization / a.avg_utilization,
        b.dollars / a.dollars * 100.0
    ));
    t.note("paper: static fleets sit at 50-65% utilization; pooling multiplexes skewed demand");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooling_raises_utilization_and_cuts_cost() {
        let (a, b) = measure(true);
        assert!(
            b.avg_utilization > a.avg_utilization,
            "pooled {:.2} vs static {:.2}",
            b.avg_utilization,
            a.avg_utilization
        );
        assert!(b.dollars < a.dollars, "pooled ${} vs static ${}", b.dollars, a.dollars);
        assert!(b.provisioned < a.provisioned);
    }

    #[test]
    fn static_utilization_sits_in_the_papers_low_band() {
        let (a, _) = measure(true);
        assert!(
            a.avg_utilization < 0.70,
            "static rack utilization {:.2} should be under 70%",
            a.avg_utilization
        );
    }

    #[test]
    fn both_architectures_actually_run_the_waves() {
        let (a, b) = measure(true);
        assert!(a.total_makespan > SimDuration::ZERO);
        assert!(b.total_makespan > SimDuration::ZERO);
    }
}
