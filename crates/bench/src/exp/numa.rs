//! E8 — the §1 claim "non-uniform memory accesses (NUMA) can slow down
//! algorithms by up to 3×".
//!
//! On the two-socket preset we run a latency-bound pointer chase and a
//! bandwidth-bound scan from socket 0, against local DRAM and against
//! socket 1's DRAM. The claim's shape: remote placement costs up to ~3×,
//! with random access hurting most.

use disagg_hwsim::device::{AccessOp, AccessPattern};
use disagg_hwsim::ids::MemDeviceId;
use disagg_hwsim::presets::two_socket;

use crate::{fmt_ratio, Table};

/// One workload's local-vs-remote measurement.
#[derive(Debug, Clone)]
pub struct NumaRow {
    /// Workload label.
    pub workload: &'static str,
    /// Local cost, ns.
    pub local_ns: f64,
    /// Remote cost, ns.
    pub remote_ns: f64,
}

impl NumaRow {
    /// Remote / local slowdown.
    pub fn slowdown(&self) -> f64 {
        self.remote_ns / self.local_ns
    }
}

/// Measures the NUMA penalty for both access shapes.
pub fn measure(quick: bool) -> Vec<NumaRow> {
    let (topo, h) = two_socket();
    let chase_bytes: u64 = if quick { 1 << 20 } else { 16 << 20 };
    let scan_bytes: u64 = if quick { 64 << 20 } else { 1 << 30 };
    let cost = |dev: MemDeviceId, bytes: u64, pattern: AccessPattern| {
        topo.access_cost(h.cpu0, dev, bytes, AccessOp::Read, pattern)
            .expect("reachable")
            .as_nanos_f64()
    };
    vec![
        NumaRow {
            workload: "pointer chase (64 B random)",
            local_ns: cost(h.dram0, chase_bytes, AccessPattern::Random),
            remote_ns: cost(h.dram1, chase_bytes, AccessPattern::Random),
        },
        NumaRow {
            workload: "sequential scan",
            local_ns: cost(h.dram0, scan_bytes, AccessPattern::Sequential),
            remote_ns: cost(h.dram1, scan_bytes, AccessPattern::Sequential),
        },
    ]
}

/// Runs E8.
pub fn run(quick: bool) -> Table {
    let rows = measure(quick);
    let mut t = Table::new(
        "numa",
        "Claim: NUMA can slow down algorithms by up to 3x",
        &["Workload", "Local (ms)", "Remote (ms)", "Slowdown"],
    );
    for r in &rows {
        t.row(vec![
            r.workload.to_string(),
            format!("{:.3}", r.local_ns / 1e6),
            format!("{:.3}", r.remote_ns / 1e6),
            fmt_ratio(r.slowdown()),
        ]);
    }
    t.note("paper cites Li et al. [39]: up to 3x for NUMA-oblivious data shuffling");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_access_lands_in_the_claimed_band() {
        for r in measure(true) {
            let s = r.slowdown();
            assert!(s > 1.2, "{}: slowdown {s:.2} too small", r.workload);
            assert!(s < 4.0, "{}: slowdown {s:.2} implausibly large", r.workload);
        }
    }

    #[test]
    fn bandwidth_bound_work_suffers_most() {
        // Li et al.'s 3x case is data *shuffling* — bandwidth-bound. The
        // NUMA link halves-to-thirds the achievable bandwidth while only
        // adding ~70 ns to latency, so the scan pays more than the chase.
        let rows = measure(true);
        assert!(
            rows[1].slowdown() > rows[0].slowdown(),
            "scan {:.2} should exceed chase {:.2}",
            rows[1].slowdown(),
            rows[0].slowdown()
        );
        assert!(rows[1].slowdown() > 2.0, "scan slowdown {:.2}", rows[1].slowdown());
    }
}
