//! E12 — Challenge 8(3): replication vs erasure coding for far memory.
//!
//! The Carbink trade-off: replication is storage-hungry but recovers by
//! plain copy; erasure coding stores `(k+m)/k` but pays parity updates on
//! writes and reconstruction on recovery. We build both schemes over the
//! same memory blades, inject a node crash, and measure storage overhead,
//! write amplification, degraded-read latency, and recovery time.

use disagg_ftol::replicate::ReplicatedRegion;
use disagg_ftol::stripe::{ParityEngine, StripedRegion};
use disagg_hwsim::contention::BandwidthLedger;
use disagg_hwsim::fault::{FaultEvent, FaultInjector, FaultKind};
use disagg_hwsim::presets::disaggregated_rack;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_region::region::{OwnerId, RegionManager};

use crate::{fmt_dur, Table};

/// One scheme's measurements.
#[derive(Debug, Clone)]
pub struct SchemeRow {
    /// Scheme label.
    pub scheme: String,
    /// Storage overhead factor.
    pub storage_overhead: f64,
    /// Bytes written per logical byte (write amplification).
    pub write_amp: f64,
    /// Healthy read latency.
    pub read: SimDuration,
    /// Degraded read latency (after one node loss).
    pub degraded_read: SimDuration,
    /// Time to restore full redundancy.
    pub recovery: SimDuration,
}

const OWNER: OwnerId = OwnerId::App;

/// Measures both schemes over the same blades.
pub fn measure(quick: bool) -> Vec<SchemeRow> {
    let size: u64 = if quick { 3 << 20 } else { 48 << 20 };
    let mut out = Vec::new();

    // --- 2x and 3x replication. ---
    for n in [2usize, 3] {
        let (topo, rack) = disaggregated_rack(2, 32, 6, 64);
        let mut mgr = RegionManager::new(&topo);
        let mut ledger = BandwidthLedger::default_buckets();
        let devs = &rack.pool[..n];
        let mut rr = ReplicatedRegion::create(&mut mgr, &topo, devs, size, OWNER, SimTime::ZERO)
            .expect("replicas");
        let none = FaultInjector::none();
        let data = vec![0x5Au8; size as usize];
        rr.write(&mut mgr, &topo, &mut ledger, &none, 0, &data, SimTime::ZERO)
            .expect("write");
        let write_amp = rr.bytes_written as f64 / size as f64;

        let mut buf = vec![0u8; size as usize];
        let (read, _) = rr
            .read(&mgr, &topo, &mut ledger, &none, rack.cpus[0], 0, &mut buf, SimTime(1))
            .expect("read");

        // Crash the first replica's node; read + recover.
        let faults = FaultInjector::with_events(vec![FaultEvent {
            at: SimTime(2),
            kind: FaultKind::NodeCrash(topo.node_of_mem(rr.devs[0])),
        }]);
        let (degraded_read, _) = rr
            .read(&mgr, &topo, &mut ledger, &faults, rack.cpus[0], 0, &mut buf, SimTime(10))
            .expect("survivor read");
        let spare = rack.pool[n];
        let recovery = rr
            .recover(&mut mgr, &topo, &mut ledger, &faults, 0, spare, SimTime(20))
            .expect("recover");
        out.push(SchemeRow {
            scheme: format!("{n}x replication"),
            storage_overhead: rr.overhead(),
            write_amp,
            read,
            degraded_read,
            recovery,
        });
    }

    // --- Reed-Solomon (4+2), host parity and DPU-offloaded parity. ---
    for engine in [ParityEngine::Host, ParityEngine::Offload] {
        let (topo, rack) = disaggregated_rack(2, 32, 7, 64);
        let mut mgr = RegionManager::new(&topo);
        let mut ledger = BandwidthLedger::default_buckets();
        let (k, m) = (4usize, 2usize);
        let mut sr = StripedRegion::create(
            &mut mgr,
            &topo,
            &rack.pool[..k + m],
            size,
            k,
            m,
            OWNER,
            SimTime::ZERO,
        )
        .expect("stripes")
        .with_parity_engine(engine);
        let data = vec![0xA5u8; size as usize];
        sr.write(&mut mgr, &topo, &mut ledger, 0, &data, SimTime::ZERO)
            .expect("write");
        let write_amp = sr.bytes_written as f64 / size as f64;

        let none = FaultInjector::none();
        let mut buf = vec![0u8; size as usize];
        let (read, degraded0) = sr
            .read(&mgr, &topo, &mut ledger, &none, 0, &mut buf, SimTime(1))
            .expect("read");
        assert!(!degraded0);

        let faults = FaultInjector::with_events(vec![FaultEvent {
            at: SimTime(2),
            kind: FaultKind::NodeCrash(topo.node_of_mem(sr.devs[0])),
        }]);
        let (degraded_read, degraded) = sr
            .read(&mgr, &topo, &mut ledger, &faults, 0, &mut buf, SimTime(10))
            .expect("degraded read");
        assert!(degraded);
        let spare = rack.pool[k + m];
        let recovery = sr
            .recover(&mut mgr, &topo, &mut ledger, &faults, 0, spare, SimTime(20))
            .expect("recover");
        let label = match engine {
            ParityEngine::Host => format!("RS({k}+{m}) erasure coding"),
            ParityEngine::Offload => format!("RS({k}+{m}) + DPU parity offload"),
        };
        out.push(SchemeRow {
            scheme: label,
            storage_overhead: sr.overhead(),
            write_amp,
            read,
            degraded_read,
            recovery,
        });
    }
    out
}

/// Runs E12.
pub fn run(quick: bool) -> Table {
    let rows = measure(quick);
    let mut t = Table::new(
        "ftol",
        "Fault tolerance: replication vs erasure coding (Carbink trade-off)",
        &[
            "Scheme",
            "Storage overhead",
            "Write amp",
            "Read",
            "Degraded read",
            "Recovery",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.scheme.clone(),
            format!("{:.2}x", r.storage_overhead),
            format!("{:.2}x", r.write_amp),
            fmt_dur(r.read),
            fmt_dur(r.degraded_read),
            fmt_dur(r.recovery),
        ]);
    }
    t.note("erasure coding: ~1.5x storage vs 2-3x for replication; the bill arrives at degraded reads and recovery");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [SchemeRow], prefix: &str) -> &'a SchemeRow {
        rows.iter().find(|r| r.scheme.starts_with(prefix)).unwrap()
    }

    #[test]
    fn storage_overheads_match_theory() {
        let rows = measure(true);
        assert_eq!(find(&rows, "2x").storage_overhead, 2.0);
        assert_eq!(find(&rows, "3x").storage_overhead, 3.0);
        assert!((find(&rows, "RS").storage_overhead - 1.5).abs() < 1e-9);
    }

    #[test]
    fn erasure_coding_saves_storage_but_pays_on_recovery_path() {
        let rows = measure(true);
        let rs = find(&rows, "RS");
        let rep2 = find(&rows, "2x");
        assert!(rs.storage_overhead < rep2.storage_overhead);
        // Degraded reads must cost more than healthy reads for RS.
        assert!(rs.degraded_read > rs.read);
        // And reconstruction reads k spans + decodes, while replication
        // recovery is a single copy of the region. Degradation factor:
        let rs_penalty = rs.degraded_read.as_nanos_f64() / rs.read.as_nanos_f64();
        let rep_penalty = rep2.degraded_read.as_nanos_f64() / rep2.read.as_nanos_f64();
        assert!(
            rs_penalty > rep_penalty,
            "RS degraded penalty {rs_penalty:.2} should exceed replication's {rep_penalty:.2}"
        );
    }

    #[test]
    fn parity_offload_shortens_the_failure_path() {
        let rows = measure(true);
        let host = find(&rows, "RS(4+2) erasure coding");
        let dpu = find(&rows, "RS(4+2) + DPU");
        assert!(dpu.degraded_read < host.degraded_read);
        assert!(dpu.recovery < host.recovery);
        assert_eq!(dpu.storage_overhead, host.storage_overhead);
    }

    #[test]
    fn write_amplification_ordering_holds() {
        let rows = measure(true);
        let rs = find(&rows, "RS").write_amp;
        let rep2 = find(&rows, "2x").write_amp;
        let rep3 = find(&rows, "3x").write_amp;
        assert!((rep2 - 2.0).abs() < 0.01);
        assert!((rep3 - 3.0).abs() < 0.01);
        assert!(rs < rep2, "RS write amp {rs:.2} must beat 2x replication");
    }
}
