//! E1 — Table 1: memory device properties as *measured* from a CPU.
//!
//! The paper's Table 1 characterizes each device class qualitatively
//! (`++`/`--` glyphs). We regenerate it by measurement: a 64-byte random
//! pointer-chase gives the observed latency, a large sequential scan the
//! observed bandwidth, and the model reports granularity, attachment,
//! sync capability, and persistence. The assertable reproduction target
//! is the *orderings* the glyph columns express.

use disagg_hwsim::device::{AccessOp, AccessPattern};
use disagg_hwsim::ids::MemDeviceId;
use disagg_hwsim::presets::single_server;

use crate::Table;

/// Observed properties for each Table 1 row.
#[derive(Debug, Clone)]
pub struct DeviceRow {
    /// Device name (paper spelling).
    pub name: String,
    /// Observed 64 B random-read latency, ns.
    pub latency_ns: f64,
    /// Observed large sequential read bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Access granularity, bytes.
    pub granularity: u64,
    /// Attachment column.
    pub attached: &'static str,
    /// Sync column.
    pub sync: &'static str,
    /// Persistence column.
    pub persistent: bool,
}

/// Measures every Table 1 device from the CPU's viewpoint.
pub fn measure(quick: bool) -> Vec<DeviceRow> {
    let (topo, h) = single_server();
    let scan_bytes: u64 = if quick { 16 << 20 } else { 256 << 20 };
    let devices: [(MemDeviceId, &str); 8] = [
        (h.cache, "Cache"),
        (h.hbm, "HBM"),
        (h.dram, "DRAM"),
        (h.pmem, "PMem"),
        (h.cxl, "CXL-DRAM"),
        (h.far, "Disagg. Mem."),
        (h.ssd, "SSD"),
        (h.hdd, "HDD"),
    ];
    devices
        .iter()
        .map(|&(dev, name)| {
            let lat = topo
                .access_cost(h.cpu, dev, 64, AccessOp::Read, AccessPattern::Random)
                .expect("reachable")
                .as_nanos_f64();
            let scan = topo
                .access_cost(h.cpu, dev, scan_bytes, AccessOp::Read, AccessPattern::Sequential)
                .expect("reachable")
                .as_nanos_f64();
            let model = topo.mem(dev);
            DeviceRow {
                name: name.to_string(),
                latency_ns: lat,
                bandwidth_gbps: scan_bytes as f64 / scan,
                granularity: model.granularity,
                attached: model.attachment.name(),
                sync: model.sync.symbol(),
                persistent: model.persistent,
            }
        })
        .collect()
}

/// Runs E1 and renders the paper-style table.
pub fn run(quick: bool) -> Table {
    let rows = measure(quick);
    let mut t = Table::new(
        "table1",
        "Table 1: Memory device properties as seen from a CPU (measured)",
        &["Name", "Bw (GB/s)", "Lat (ns)", "Gran", "Attached", "Sync", "Persist"],
    );
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            format!("{:.1}", r.bandwidth_gbps),
            format!("{:.0}", r.latency_ns),
            format!("{} B", r.granularity),
            r.attached.to_string(),
            r.sync.to_string(),
            if r.persistent { "yes" } else { "no" }.to_string(),
        ]);
    }
    t.note("paper: Bw ordering Cache/HBM ++ > DRAM + > PMem/CXL/Disagg o > SSD - > HDD --");
    t.note("paper: Lat ordering Cache ++ < HBM/DRAM + < PMem/CXL o < Disagg - < SSD - < HDD --");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(rows: &[DeviceRow], name: &str) -> DeviceRow {
        rows.iter().find(|r| r.name == name).expect(name).clone()
    }

    #[test]
    fn latency_ordering_matches_table1_glyphs() {
        let rows = measure(true);
        let lat = |n: &str| by_name(&rows, n).latency_ns;
        assert!(lat("Cache") < lat("DRAM"));
        assert!(lat("DRAM") <= lat("HBM") * 1.5);
        assert!(lat("DRAM") < lat("PMem"));
        assert!(lat("PMem") < lat("Disagg. Mem."));
        assert!(lat("CXL-DRAM") < lat("Disagg. Mem."));
        assert!(lat("Disagg. Mem.") < lat("SSD"));
        assert!(lat("SSD") < lat("HDD"));
    }

    #[test]
    fn bandwidth_ordering_matches_table1_glyphs() {
        let rows = measure(true);
        let bw = |n: &str| by_name(&rows, n).bandwidth_gbps;
        assert!(bw("Cache") > bw("DRAM"));
        assert!(bw("HBM") > bw("DRAM"));
        assert!(bw("DRAM") > bw("PMem"));
        assert!(bw("CXL-DRAM") > bw("SSD"));
        assert!(bw("SSD") > bw("HDD"));
    }

    #[test]
    fn qualitative_columns_match_the_paper() {
        let rows = measure(true);
        assert_eq!(by_name(&rows, "Cache").granularity, 1);
        assert_eq!(by_name(&rows, "PMem").granularity, 256);
        assert_eq!(by_name(&rows, "SSD").granularity, 4096);
        assert_eq!(by_name(&rows, "CXL-DRAM").attached, "PCIe");
        assert_eq!(by_name(&rows, "Disagg. Mem.").attached, "NIC");
        assert_eq!(by_name(&rows, "HDD").attached, "SATA");
        assert_eq!(by_name(&rows, "CXL-DRAM").sync, "yes/no");
        assert_eq!(by_name(&rows, "Disagg. Mem.").sync, "no");
        assert!(by_name(&rows, "PMem").persistent);
        assert!(!by_name(&rows, "DRAM").persistent);
    }

    #[test]
    fn cxl_latency_lands_in_the_pond_band() {
        // Pond (ASPLOS '23) reports CXL ≈ NUMA-remote latency: roughly
        // 150-400 ns. Our measured value should land in that band.
        let rows = measure(true);
        let cxl = by_name(&rows, "CXL-DRAM").latency_ns;
        assert!((150.0..450.0).contains(&cxl), "CXL latency {cxl} ns");
    }

    #[test]
    fn table_renders_all_eight_rows() {
        let t = run(true);
        assert_eq!(t.rows.len(), 8);
        assert_eq!(t.cell("DRAM", "Persist"), Some("no"));
        assert_eq!(t.cell("PMem", "Persist"), Some("yes"));
    }
}
