//! E16 — online serving: "dataflow systems that serve thousands of jobs
//! in parallel" (§2.1).
//!
//! A stream of mixed jobs (DBMS queries, ML trainings, streaming windows)
//! arrives with exponential-ish gaps. We measure the mean job *sojourn*
//! (arrival → last task finish) under the full declarative runtime and
//! under the compute-centric baseline, across arrival rates. The shape:
//! the declarative runtime holds lower sojourn at every load, and the gap
//! widens as the system saturates.

use disagg_core::prelude::*;
use disagg_hwsim::presets::single_server;
use disagg_hwsim::rng::SimRng;
use disagg_workloads::{dbms, ml, streaming};

use crate::{fmt_dur, fmt_ratio, Table};

/// One arrival-rate measurement.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Mean inter-arrival gap.
    pub gap: SimDuration,
    /// Mean sojourn under the declarative runtime.
    pub declarative: SimDuration,
    /// Mean sojourn under the compute-centric baseline.
    pub compute_centric: SimDuration,
}

fn job_mix(i: usize, quick: bool) -> JobSpec {
    let scale = if quick { 1 } else { 2 };
    match i % 3 {
        0 => dbms::query_job(dbms::DbmsConfig {
            tuples: 2_000 * scale,
            probe_tuples: 1_000 * scale,
            seed: 42 + i as u64,
            ..dbms::DbmsConfig::default()
        }),
        1 => ml::training_job(ml::MlConfig {
            samples: 1_024 * scale,
            epochs: 1,
            seed: 7 + i as u64,
            ..ml::MlConfig::default()
        }),
        _ => streaming::windowed_job(streaming::StreamConfig {
            events: 2_000 * scale,
            seed: 13 + i as u64,
            ..streaming::StreamConfig::default()
        }),
    }
}

fn mean_sojourn(config: RuntimeConfig, jobs: usize, gap_ns: u64, quick: bool) -> SimDuration {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, config);
    let mut rng = SimRng::new(2_023);
    let mut at = 0u64;
    let arrivals: Vec<(SimDuration, JobSpec)> = (0..jobs)
        .map(|i| {
            let offset = SimDuration::from_nanos(at);
            // Exponential-ish gaps: uniform in [0.5, 1.5] x mean.
            at += gap_ns / 2 + rng.next_below(gap_ns.max(1));
            (offset, job_mix(i, quick))
        })
        .collect();
    let offsets: Vec<SimDuration> = arrivals.iter().map(|(o, _)| *o).collect();
    let report = rt.execute(arrivals).expect("stream runs");
    // Sojourn per job: last task finish - arrival.
    let mut total = SimDuration::ZERO;
    for (j, &offset) in offsets.iter().enumerate() {
        let finish = report
            .tasks
            .iter()
            .filter(|t| t.job == JobId(j as u64))
            .map(|t| t.finish)
            .max()
            .expect("job ran");
        total += finish - (SimTime::ZERO + offset);
    }
    total / offsets.len() as u64
}

/// Measures sojourn across arrival rates.
pub fn measure(quick: bool) -> Vec<LoadPoint> {
    let jobs = if quick { 9 } else { 30 };
    let gaps: &[u64] = if quick {
        &[1_000_000, 100_000, 10_000]
    } else {
        &[10_000_000, 1_000_000, 100_000, 10_000]
    };
    gaps.iter()
        .map(|&gap_ns| LoadPoint {
            gap: SimDuration::from_nanos(gap_ns),
            declarative: mean_sojourn(RuntimeConfig::traced(), jobs, gap_ns, quick),
            compute_centric: mean_sojourn(RuntimeConfig::compute_centric(), jobs, gap_ns, quick),
        })
        .collect()
}

/// Runs E16.
pub fn run(quick: bool) -> Table {
    let points = measure(quick);
    let mut t = Table::new(
        "online",
        "Online serving: mean job sojourn under arrival load",
        &["Mean gap", "Declarative", "Compute-centric", "Gap"],
    );
    for p in &points {
        t.row(vec![
            fmt_dur(p.gap),
            fmt_dur(p.declarative),
            fmt_dur(p.compute_centric),
            fmt_ratio(p.compute_centric.as_nanos_f64() / p.declarative.as_nanos_f64()),
        ]);
    }
    t.note("mixed stream: DBMS / ML / streaming jobs with randomized inter-arrival gaps");
    t.note("the declarative runtime holds lower sojourn at every load level");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarative_beats_compute_centric_at_every_load() {
        for p in measure(true) {
            assert!(
                p.declarative <= p.compute_centric,
                "gap {}: declarative {} vs compute-centric {}",
                p.gap,
                p.declarative,
                p.compute_centric
            );
        }
    }

    #[test]
    fn higher_load_never_reduces_sojourn() {
        let points = measure(true);
        // Points are ordered from light load (big gap) to heavy load.
        for w in points.windows(2) {
            assert!(
                w[1].declarative.as_nanos_f64() >= w[0].declarative.as_nanos_f64() * 0.9,
                "sojourn should not improve under load: {:?}",
                points.iter().map(|p| p.declarative).collect::<Vec<_>>()
            );
        }
    }
}
