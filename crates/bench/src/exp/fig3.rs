//! E6 — Figure 3: the same logical region maps to different physical
//! devices depending on the executing compute device.
//!
//! A single declarative request — "fast local scratch, mixed random
//! access" — is resolved once from the CPU and once from the GPU. The
//! runtime picks DRAM and GDDR respectively; the table also quantifies
//! what ignoring the executing device would cost by measuring the same
//! access pattern against the *other* device's choice.

use disagg_hwsim::device::{AccessOp, AccessPattern};
use disagg_hwsim::ids::{ComputeId, MemDeviceId};
use disagg_hwsim::presets::single_server;
use disagg_region::pool::MemoryPool;
use disagg_region::props::{AccessHint, LatencyClass, PropertySet};
use disagg_sched::placement::{PlacementEngine, PlacementPolicy};

use crate::{fmt_ratio, Table};

/// One viewpoint's resolution and the penalty for swapping it.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Executing device label.
    pub from: &'static str,
    /// Chosen device name.
    pub chosen: String,
    /// Cost of the workload on the chosen device (ns).
    pub chosen_ns: f64,
    /// Cost on the device the *other* viewpoint chose (ns).
    pub swapped_ns: f64,
}

impl Mapping {
    /// Penalty factor for using the other viewpoint's placement.
    pub fn penalty(&self) -> f64 {
        self.swapped_ns / self.chosen_ns
    }
}

/// Resolves the Figure 3 request from both devices and measures the swap
/// penalty with a mixed random workload of `bytes`.
pub fn measure(bytes: u64) -> Vec<Mapping> {
    let (topo, h) = single_server();
    let pool = MemoryPool::new(&topo);
    let mut engine = PlacementEngine::new(PlacementPolicy::Declarative);
    let props = PropertySet::new()
        .with_latency(LatencyClass::Low)
        .with_hint(AccessHint::mixed_random());
    let size = 1u64 << 30;

    let cost = |c: ComputeId, d: MemDeviceId| {
        topo.access_cost(c, d, bytes, AccessOp::Read, AccessPattern::Random)
            .map(|t| t.as_nanos_f64())
            .unwrap_or(f64::INFINITY)
    };
    let cpu_choice = engine
        .choose(&topo, &pool, h.cpu, &props, size)
        .expect("CPU viewpoint resolvable");
    let gpu_choice = engine
        .choose(&topo, &pool, h.gpu, &props, size)
        .expect("GPU viewpoint resolvable");
    vec![
        Mapping {
            from: "CPU",
            chosen: topo.mem(cpu_choice).kind.name().to_string(),
            chosen_ns: cost(h.cpu, cpu_choice),
            swapped_ns: cost(h.cpu, gpu_choice),
        },
        Mapping {
            from: "GPU",
            chosen: topo.mem(gpu_choice).kind.name().to_string(),
            chosen_ns: cost(h.gpu, gpu_choice),
            swapped_ns: cost(h.gpu, cpu_choice),
        },
    ]
}

/// Runs E6.
pub fn run(quick: bool) -> Table {
    let bytes = if quick { 8 << 20 } else { 64 << 20 };
    let rows = measure(bytes);
    let mut t = Table::new(
        "fig3",
        "Figure 3: 'fast local scratch' resolved per executing device",
        &["From", "Runtime picks", "Cost (ms)", "Other view's pick (ms)", "Swap penalty"],
    );
    for m in &rows {
        t.row(vec![
            m.from.to_string(),
            m.chosen.clone(),
            format!("{:.2}", m.chosen_ns / 1e6),
            format!("{:.2}", m.swapped_ns / 1e6),
            fmt_ratio(m.penalty()),
        ]);
    }
    t.note("the identical declarative request lands on DRAM for the CPU and GDDR for the GPU");
    t.note("location-based placement cannot express this; property-based placement gets it for free");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_gets_dram_gpu_gets_gddr() {
        let rows = measure(8 << 20);
        assert_eq!(rows[0].from, "CPU");
        assert_eq!(rows[0].chosen, "DRAM");
        assert_eq!(rows[1].from, "GPU");
        assert_eq!(rows[1].chosen, "GDDR");
    }

    #[test]
    fn swapping_viewpoints_is_expensive_for_both() {
        for m in measure(8 << 20) {
            assert!(
                m.penalty() > 1.5,
                "{}: penalty {:.2} should exceed 1.5x",
                m.from,
                m.penalty()
            );
        }
    }
}
