//! Experiment modules, one per paper artifact. See the crate docs for
//! the mapping table.

pub mod ablation;
pub mod asynk;
pub mod chaos;
pub mod chaos_serve;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod ftol;
pub mod naive;
pub mod numa;
pub mod online;
pub mod serving;
pub mod table1;
pub mod table2;
pub mod stream;
pub mod table3;
pub mod tiering;

use crate::Table;

/// An experiment entry: id plus its quick/full runner.
pub type Experiment = (&'static str, fn(bool) -> Table);

/// Every experiment as `(id, runner)`, in report order.
pub fn all() -> Vec<Experiment> {
    vec![
        ("table1", table1::run as fn(bool) -> Table),
        ("table2", table2::run),
        ("table3", table3::run),
        ("fig1", fig1::run),
        ("fig2", fig2::run),
        ("fig3", fig3::run),
        ("fig4", fig4::run),
        ("numa", numa::run),
        ("naive", naive::run),
        ("async", asynk::run),
        ("ftol", ftol::run),
        ("tiering", tiering::run),
        ("stream", stream::run),
        ("online", online::run),
        ("ablation", ablation::run),
        ("chaos", chaos::run),
        ("serving", serving::run),
        ("chaos_serve", chaos_serve::run),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_experiment_is_registered() {
        let ids: Vec<&str> = super::all().iter().map(|(id, _)| *id).collect();
        for id in [
            "table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4", "numa", "naive",
            "async", "ftol", "tiering", "stream", "online", "ablation", "chaos", "serving",
            "chaos_serve",
        ] {
            assert!(ids.contains(&id), "missing experiment {id}");
        }
    }
}
