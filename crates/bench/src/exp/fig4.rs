//! E7 — Figure 4: output→input handover as ownership transfer vs copy.
//!
//! A pipeline of N tasks passes a B-byte buffer down the chain. Under
//! the paper's ownership model the handover is a metadata update — zero
//! bytes move; under the copy baseline every edge moves the full buffer.
//! The table sweeps the buffer size and reports bytes moved and makespan
//! for both policies.

use disagg_core::prelude::*;
use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::presets::single_server;

use crate::{fmt_bytes, fmt_dur, fmt_ratio, Table};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct HandoverPoint {
    /// Buffer bytes per edge.
    pub buffer: u64,
    /// Pipeline length.
    pub tasks: usize,
    /// Handover bytes physically moved under ownership transfer.
    pub transfer_moved: u64,
    /// Handover bytes physically moved under copy.
    pub copy_moved: u64,
    /// Makespan under ownership transfer.
    pub transfer_makespan: SimDuration,
    /// Makespan under copy.
    pub copy_makespan: SimDuration,
}

fn pipeline_job(n: usize, buffer: u64) -> JobSpec {
    let mut job = JobBuilder::new("fig4-pipe");
    let ids: Vec<TaskId> = (0..n)
        .map(|i| {
            job.task(
                TaskSpec::new(format!("stage{i}"))
                    .work(WorkClass::Scalar, 1_000)
                    .output_bytes(buffer)
                    .body(move |ctx| {
                        // Touch a small header of the input (the payload
                        // moves by handover, not by re-reading).
                        if !ctx.inputs().is_empty() {
                            let mut hdr = [0u8; 64];
                            ctx.read_input(0, &mut hdr)?;
                        }
                        ctx.compute(WorkClass::Scalar, 1_000);
                        ctx.write_output(0, &[0xAB; 64])?;
                        Ok(())
                    }),
            )
        })
        .collect();
    job.chain(&ids);
    job.build().expect("fig4 pipeline is valid")
}

/// Handover-attributable bytes: Migrate trace events are exactly the
/// physical handover copies in this job (no tiering runs here).
fn run_once(policy: HandoverPolicy, n: usize, buffer: u64) -> (u64, SimDuration) {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced().with_handover(policy));
    let report = rt.execute(pipeline_job(n, buffer)).expect("pipeline runs");
    let moved = rt
        .trace()
        .events()
        .iter()
        .map(|e| match *e {
            disagg_hwsim::trace::TraceEvent::Migrate { bytes, .. } => bytes,
            _ => 0,
        })
        .sum();
    (moved, report.makespan)
}

/// Sweeps buffer sizes.
pub fn measure(quick: bool) -> Vec<HandoverPoint> {
    let n = 6;
    let sizes: &[u64] = if quick {
        &[1 << 16, 1 << 20, 16 << 20]
    } else {
        &[1 << 16, 1 << 20, 16 << 20, 128 << 20, 1 << 30]
    };
    sizes
        .iter()
        .map(|&buffer| {
            let (transfer_moved, transfer_makespan) =
                run_once(HandoverPolicy::TransferWhenPossible, n, buffer);
            let (copy_moved, copy_makespan) = run_once(HandoverPolicy::AlwaysCopy, n, buffer);
            HandoverPoint {
                buffer,
                tasks: n,
                transfer_moved,
                copy_moved,
                transfer_makespan,
                copy_makespan,
            }
        })
        .collect()
}

/// Runs E7.
pub fn run(quick: bool) -> Table {
    let points = measure(quick);
    let mut t = Table::new(
        "fig4",
        "Figure 4: ownership transfer vs physical copy at task handover",
        &[
            "Buffer",
            "Handover bytes (transfer)",
            "Handover bytes (copy)",
            "Makespan (transfer)",
            "Makespan (copy)",
            "Speedup",
        ],
    );
    for p in &points {
        t.row(vec![
            fmt_bytes(p.buffer),
            fmt_bytes(p.transfer_moved),
            fmt_bytes(p.copy_moved),
            fmt_dur(p.transfer_makespan),
            fmt_dur(p.copy_makespan),
            fmt_ratio(p.copy_makespan.as_nanos_f64() / p.transfer_makespan.as_nanos_f64()),
        ]);
    }
    t.note("ownership transfer moves 0 handover bytes regardless of buffer size: O(1) vs O(B*N)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_moves_zero_handover_bytes() {
        for p in measure(true) {
            assert_eq!(p.transfer_moved, 0, "buffer {}", p.buffer);
            assert_eq!(
                p.copy_moved,
                p.buffer * (p.tasks as u64 - 1),
                "copy moves B bytes per edge"
            );
        }
    }

    #[test]
    fn copy_penalty_grows_with_buffer_size() {
        let points = measure(true);
        let ratios: Vec<f64> = points
            .iter()
            .map(|p| p.copy_makespan.as_nanos_f64() / p.transfer_makespan.as_nanos_f64())
            .collect();
        assert!(
            ratios.windows(2).all(|w| w[1] >= w[0] * 0.95),
            "ratios should be non-decreasing: {ratios:?}"
        );
        assert!(
            *ratios.last().unwrap() > 2.0,
            "16 MiB buffers should show >2x copy penalty, got {ratios:?}"
        );
    }
}
