//! E3 — Table 3: the four application types run on the three regions,
//! and declarative placement beats naïve placement on every one of them.
//!
//! Each workload (DBMS, ML/AI, HPC, streaming) is executed twice on the
//! same hardware — once with the memory-centric declarative optimizer,
//! once with the worst-feasible adversary bounding naïve placement — and
//! the table reports both makespans and the speedup.

use disagg_core::prelude::*;
use disagg_hwsim::presets::single_server;
use disagg_workloads::{dbms, hpc, ml, streaming};

use crate::{fmt_dur, fmt_ratio, Table};

/// One application row.
#[derive(Debug, Clone)]
pub struct AppRow {
    /// Application class.
    pub app: &'static str,
    /// Declarative-placement makespan.
    pub declarative: SimDuration,
    /// Worst-feasible-placement makespan.
    pub naive: SimDuration,
}

impl AppRow {
    /// naive / declarative.
    pub fn speedup(&self) -> f64 {
        self.naive.as_nanos_f64() / self.declarative.as_nanos_f64().max(1.0)
    }
}

fn job_for(app: &str, quick: bool) -> JobSpec {
    let scale = if quick { 1 } else { 4 };
    match app {
        "DBMS" => dbms::query_job(dbms::DbmsConfig {
            tuples: 4_000 * scale,
            probe_tuples: 2_000 * scale,
            ..dbms::DbmsConfig::default()
        }),
        "ML/AI" => ml::training_job(ml::MlConfig {
            samples: 2_048 * scale,
            epochs: 2 * scale,
            ..ml::MlConfig::default()
        }),
        "HPC" => hpc::stencil_job(hpc::HpcConfig {
            cells: 4_096 * scale,
            sweeps: 6 * scale,
            ..hpc::HpcConfig::default()
        }),
        "Streaming" => streaming::windowed_job(streaming::StreamConfig {
            events: 5_000 * scale,
            ..streaming::StreamConfig::default()
        }),
        other => panic!("unknown app {other}"),
    }
}

/// Runs every application under both placement policies.
pub fn measure(quick: bool) -> Vec<AppRow> {
    ["DBMS", "ML/AI", "HPC", "Streaming"]
        .into_iter()
        .map(|app| {
            let run = |policy: PlacementPolicy| {
                let (topo, _) = single_server();
                let mut rt = Runtime::new(topo, RuntimeConfig::traced().with_placement(policy));
                rt.execute(job_for(app, quick)).expect("workload runs").makespan
            };
            AppRow {
                app,
                declarative: run(PlacementPolicy::Declarative),
                naive: run(PlacementPolicy::WorstFeasible),
            }
        })
        .collect()
}

/// Runs E3.
pub fn run(quick: bool) -> Table {
    let rows = measure(quick);
    let mut t = Table::new(
        "table3",
        "Table 3: Application types on the three Memory Regions",
        &["Application", "Declarative", "Naive (worst feasible)", "Speedup"],
    );
    for r in &rows {
        t.row(vec![
            r.app.to_string(),
            fmt_dur(r.declarative),
            fmt_dur(r.naive),
            fmt_ratio(r.speedup()),
        ]);
    }
    t.note("each app uses private scratch / global state / global scratch per Table 3");
    t.note("expected shape: declarative wins on every application class");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarative_wins_on_every_application_class() {
        for r in measure(true) {
            assert!(
                r.speedup() > 1.0,
                "{}: declarative {} vs naive {}",
                r.app,
                r.declarative,
                r.naive
            );
        }
    }

    #[test]
    fn all_four_rows_present() {
        let t = run(true);
        assert_eq!(t.rows.len(), 4);
        for app in ["DBMS", "ML/AI", "HPC", "Streaming"] {
            assert!(t.cell(app, "Speedup").is_some(), "missing {app}");
        }
    }
}
