//! E15 — the paper's batch-vs-stream property ("Jobs and tasks could be
//! either streamed or processed in batches", §2.1).
//!
//! The same task chain runs twice: declared batch (each stage waits for
//! its predecessor's full output) and declared streaming (a stage starts
//! once the predecessor's first chunk is out, when the handover is a
//! zero-copy ownership transfer). The assertable shape: the streaming
//! speedup grows with chain depth and saturates near the pipeline depth.

use disagg_core::prelude::*;
use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::presets::single_server;

use crate::{fmt_dur, fmt_ratio, Table};

/// One chain-length measurement.
#[derive(Debug, Clone)]
pub struct ChainPoint {
    /// Number of stages.
    pub stages: usize,
    /// Batch makespan.
    pub batch: SimDuration,
    /// Streaming makespan.
    pub streamed: SimDuration,
}

impl ChainPoint {
    /// batch / streamed.
    pub fn speedup(&self) -> f64 {
        self.batch.as_nanos_f64() / self.streamed.as_nanos_f64()
    }
}

fn chain_job(stages: usize, streaming: bool, elems: u64) -> JobSpec {
    let mut job = JobBuilder::new("chain");
    let ids: Vec<TaskId> = (0..stages)
        .map(|i| {
            job.task(
                TaskSpec::new(format!("stage{i}"))
                    .streaming(streaming)
                    .work(WorkClass::Scalar, elems)
                    .output_bytes(1 << 20)
                    .body(move |ctx| {
                        ctx.compute(WorkClass::Scalar, elems);
                        ctx.write_output(0, &[1u8; 1 << 20])?;
                        Ok(())
                    }),
            )
        })
        .collect();
    job.chain(&ids);
    job.build().expect("chain job is valid")
}

/// Measures both modes over a sweep of chain depths.
pub fn measure(quick: bool) -> Vec<ChainPoint> {
    let elems: u64 = if quick { 500_000 } else { 5_000_000 };
    let depths: &[usize] = if quick { &[2, 4, 8] } else { &[2, 4, 8, 16, 24] };
    depths
        .iter()
        .map(|&stages| {
            let run = |streaming| {
                let (topo, _) = single_server();
                let mut rt = Runtime::new(topo, RuntimeConfig::traced());
                rt.execute(chain_job(stages, streaming, elems))
                    .expect("chain runs")
                    .makespan
            };
            ChainPoint {
                stages,
                batch: run(false),
                streamed: run(true),
            }
        })
        .collect()
}

/// Runs E15.
pub fn run(quick: bool) -> Table {
    let points = measure(quick);
    let mut t = Table::new(
        "stream",
        "Batch vs stream: pipelined task chains (the Figure 2c property)",
        &["Stages", "Batch", "Streamed", "Speedup"],
    );
    for p in &points {
        t.row(vec![
            p.stages.to_string(),
            fmt_dur(p.batch),
            fmt_dur(p.streamed),
            fmt_ratio(p.speedup()),
        ]);
    }
    t.note("streaming edges release consumers at first-chunk time (pipeline depth 8)");
    t.note("speedup grows with chain depth and saturates near the pipeline depth");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_speedup_grows_with_depth_and_stays_bounded() {
        let points = measure(true);
        let s: Vec<f64> = points.iter().map(ChainPoint::speedup).collect();
        for w in s.windows(2) {
            assert!(w[1] >= w[0] * 0.95, "speedups should grow: {s:?}");
        }
        assert!(*s.last().unwrap() > 2.0, "deep chains pipeline well: {s:?}");
        for (p, &v) in points.iter().zip(&s) {
            assert!(
                v <= p.stages as f64,
                "{} stages cannot beat {}x, got {v:.2}",
                p.stages,
                p.stages
            );
        }
    }

    #[test]
    fn two_stage_chains_gain_modestly() {
        let points = measure(true);
        let two = points.iter().find(|p| p.stages == 2).unwrap();
        assert!(two.speedup() < 2.0);
        assert!(two.speedup() > 1.0);
    }
}
