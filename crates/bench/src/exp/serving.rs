//! E17 — serving sweep: open-loop multi-tenant traffic against the
//! rack, offered load swept to find the saturation knee.
//!
//! Each sweep point runs the same seeded request stream (Poisson
//! arrivals, Zipf tenant mix, per-tenant quotas and SLOs) at a
//! different mean inter-arrival gap, expressed as a multiple of the
//! calibrated mean service time. Light load leaves the rack idle
//! between requests; past the knee, queueing blows the p99 up. Every
//! number is virtual-time-only, so the sweep — and the `serving`
//! section of `BENCH_disagg.json` it feeds — is byte-identical across
//! runs and shard counts.

use disagg_core::prelude::{Runtime, RuntimeConfig};
use disagg_dataflow::{JobBuilder, TaskSpec};
use disagg_hwsim::compute::WorkClass;
use disagg_hwsim::presets::disaggregated_rack;
use disagg_hwsim::time::SimDuration;
use disagg_obs::{TenantAttribution, TenantBurn};
use disagg_serve::{ArrivalProcess, Request, ServeConfig, ServeLayer, Slo};

use crate::{fmt_dur, Table};

/// One offered-load sweep point.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Offered-load label relative to service capacity ("0.25x", ...).
    pub load: &'static str,
    /// Mean inter-arrival gap driven at this point.
    pub mean_gap: SimDuration,
    /// Requests offered / admitted / rejected.
    pub offered: usize,
    /// Requests admitted past the per-tenant quotas.
    pub admitted: usize,
    /// Requests rejected by quota admission.
    pub rejected: usize,
    /// Virtual serving horizon.
    pub makespan: SimDuration,
    /// Median sojourn across admitted requests.
    pub p50: SimDuration,
    /// Tail sojourn across admitted requests.
    pub p99: SimDuration,
    /// Exact peak pooled-memory utilization during the run.
    pub peak_util: f64,
}

/// One tenant's outcome at the saturation knee.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Tenant index (Zipf rank; 0 = hottest).
    pub tenant: usize,
    /// Requests the tenant offered.
    pub offered: usize,
    /// Requests admitted.
    pub admitted: usize,
    /// Requests rejected by its quota.
    pub rejected: usize,
    /// Median sojourn.
    pub p50: SimDuration,
    /// Tail sojourn.
    pub p99: SimDuration,
    /// Whether the tenant's SLO held at the knee.
    pub slo_met: bool,
}

/// The full serving record: the sweep, where it saturates, and the
/// per-tenant + utilization detail at that point.
#[derive(Debug, Clone)]
pub struct ServingRecord {
    /// Tenants in the mix.
    pub tenants: usize,
    /// Requests per sweep point.
    pub requests: usize,
    /// Root seed.
    pub seed: u64,
    /// The offered-load sweep, lightest first.
    pub sweep: Vec<ServingRow>,
    /// Index into `sweep` of the saturation knee: the first point whose
    /// p99 exceeds twice the lightest-load p99 (the heaviest point when
    /// none does).
    pub knee: usize,
    /// Per-tenant outcomes at the knee.
    pub knee_tenants: Vec<TenantRow>,
    /// Pooled-memory utilization over the knee run as
    /// `(offset, fraction)` samples.
    pub util_curve: Vec<(SimDuration, f64)>,
    /// Per-tenant tail-latency attribution at the knee: exact p99, the
    /// summed component breakdown, the dominant component, and the
    /// exemplar request ids behind the tail.
    pub tail_attribution: Vec<TenantAttribution>,
    /// Per-tenant SLO burn curves at the knee (aligned virtual-time
    /// windows of good/bad counts against each tenant's p99 SLO).
    pub burn: Vec<TenantBurn>,
}

/// The heterogeneous template mix: an interactive point lookup, a small
/// analytics fan-out, and a sharded bulk ingest. Work jitters per
/// request off the request seed.
pub fn templates() -> ServeLayer {
    let mut layer = ServeLayer::new();
    layer.register("interactive", |req: &Request| {
        let mut j = JobBuilder::new("interactive");
        let a = j.task(
            TaskSpec::new("lookup")
                .work(WorkClass::Scalar, 20_000 + req.seed % 4_000)
                .output_bytes(8 << 20),
        );
        let b = j.task(TaskSpec::new("render").work(WorkClass::Scalar, 10_000));
        j.edge(a, b);
        j.build().expect("interactive template is a valid DAG")
    });
    layer.register("analytics", |req: &Request| {
        let mut j = JobBuilder::new("analytics");
        let scan = j.task(
            TaskSpec::new("scan")
                .work(WorkClass::Vector, 40_000 + req.seed % 8_000)
                .output_bytes(64 << 20),
        );
        let agg = j.task(TaskSpec::new("agg").work(WorkClass::Vector, 20_000).output_bytes(8 << 20));
        for i in 0..3 {
            let part = j.task(
                TaskSpec::new(format!("part{i}"))
                    .work(WorkClass::Vector, 15_000)
                    .output_bytes(16 << 20),
            );
            j.edge(scan, part);
            j.edge(part, agg);
        }
        j.build().expect("analytics template is a valid DAG")
    });
    layer.register("ingest", |req: &Request| {
        let mut j = JobBuilder::new("ingest");
        let recv = j.task(
            TaskSpec::new("recv")
                .work(WorkClass::Scalar, 15_000)
                .output_bytes(128 << 20),
        );
        let store = j.task(TaskSpec::new("store").work(WorkClass::Scalar, 8_000));
        for i in 0..4 {
            let shard = j.task(
                TaskSpec::new(format!("shard{i}"))
                    .work(WorkClass::Vector, 25_000 + req.seed % 5_000)
                    .output_bytes(32 << 20),
            );
            j.edge(recv, shard);
            j.edge(shard, store);
        }
        j.build().expect("ingest template is a valid DAG")
    });
    layer
}

/// Calibrates the mean service time of the template mix: each template
/// instantiated once with a fixed representative request and run alone
/// on the same rack shape the sweep uses.
fn mean_service() -> SimDuration {
    let layer = templates();
    let mut total = SimDuration::ZERO;
    for ti in 0..layer.len() {
        let req = Request {
            index: 0,
            tenant: ti,
            arrival: SimDuration::ZERO,
            seed: 0x5eed ^ ti as u64,
        };
        let job = layer.instantiate(ti, &req);
        let mut rt = Runtime::new(disaggregated_rack(4, 8, 2, 32).0, RuntimeConfig::default());
        total += rt.execute(job).expect("calibration run").makespan;
    }
    SimDuration(total.0 / layer.len().max(1) as u64)
}

/// Offered-load levels as (label, gap divisor): `mean_gap = svc * 4 /
/// divisor`, so "1.00x" drives one request per mean service time.
fn levels(quick: bool) -> &'static [(&'static str, u64)] {
    if quick {
        &[("0.50x", 2), ("2.00x", 8), ("8.00x", 32)]
    } else {
        &[("0.25x", 1), ("0.50x", 2), ("1.00x", 4), ("2.00x", 8), ("4.00x", 16), ("8.00x", 32)]
    }
}

/// Runs the sweep and extracts the knee.
pub fn measure(quick: bool) -> ServingRecord {
    let svc = mean_service();
    let tenants = 6;
    let requests = if quick { 48 } else { 160 };
    let seed = 0xd15a66_u64;
    // Quota: 512 MiB per tenant — two concurrent ingest-sized requests;
    // generous at light load, binding for the ingest tenants past the
    // knee. The sum of quotas (3 GiB) is also the utilization
    // denominator in the sweep's util curve.
    let quota = Some(512u64 << 20);
    let slo = Some(Slo { p50: SimDuration(svc.0 * 4), p99: SimDuration(svc.0 * 16) });

    let mut sweep = Vec::new();
    let mut reports = Vec::new();
    for &(label, divisor) in levels(quick) {
        let mean_gap = SimDuration((svc.0 * 4) / divisor);
        let cfg = ServeConfig {
            arrivals: ArrivalProcess::Poisson { mean_gap },
            requests,
            tenants,
            zipf_theta: 1.0,
            seed,
            quota,
            slo,
            ..ServeConfig::default()
        };
        let mut rt = Runtime::new(disaggregated_rack(4, 8, 2, 32).0, RuntimeConfig::traced());
        let report = templates().run(&mut rt, &cfg).expect("sweep point serves");
        sweep.push(ServingRow {
            load: label,
            mean_gap,
            offered: report.offered,
            admitted: report.admitted,
            rejected: report.rejected,
            makespan: report.makespan,
            p50: report.p50(),
            p99: report.p99(),
            peak_util: report.peak_util,
        });
        reports.push(report);
    }

    // The knee: first point whose p99 more than doubles the lightest
    // load's p99 — queueing has taken over.
    let base_p99 = sweep.first().map(|r| r.p99.0).unwrap_or(0);
    let knee = sweep
        .iter()
        .position(|r| r.p99.0 > base_p99 * 2)
        .unwrap_or(sweep.len().saturating_sub(1));

    let knee_report = &reports[knee];
    let knee_tenants = knee_report
        .tenants
        .iter()
        .map(|t| TenantRow {
            tenant: t.tenant,
            offered: t.offered,
            admitted: t.admitted,
            rejected: t.rejected,
            p50: t.p50,
            p99: t.p99,
            slo_met: t.slo_met,
        })
        .collect();
    let util_curve = knee_report
        .util_curve
        .iter()
        .map(|s| (s.at, s.frac))
        .collect();

    ServingRecord {
        tenants,
        requests,
        seed,
        sweep,
        knee,
        knee_tenants,
        util_curve,
        tail_attribution: knee_report.tail_attribution.clone(),
        burn: knee_report.burn.clone(),
    }
}

/// The saturation-load serving config the throughput guard wall-clocks
/// (`driver::measure_serving_throughput`). Arrivals ~8x denser than the
/// mean service time keep the executor busy end to end without piling
/// up hundreds of concurrent bulk transfers (which would stress the
/// contention ledger, not the serving path).
pub fn saturated_config(requests: usize) -> ServeConfig {
    ServeConfig {
        arrivals: ArrivalProcess::Poisson { mean_gap: SimDuration::from_micros(75) },
        requests,
        tenants: 6,
        zipf_theta: 1.0,
        seed: 0xd15a66,
        ..ServeConfig::default()
    }
}

/// Runs E17.
pub fn run(quick: bool) -> Table {
    let rec = measure(quick);
    let mut t = Table::new(
        "serving",
        "Serving sweep: open-loop Poisson/Zipf traffic, offered load vs. latency",
        &["Load", "Gap", "Offered", "Admitted", "Rejected", "p50", "p99", "PeakUtil", "Knee"],
    );
    for (i, r) in rec.sweep.iter().enumerate() {
        t.row(vec![
            r.load.to_string(),
            fmt_dur(r.mean_gap),
            r.offered.to_string(),
            r.admitted.to_string(),
            r.rejected.to_string(),
            fmt_dur(r.p50),
            fmt_dur(r.p99),
            format!("{:.4}", r.peak_util),
            if i == rec.knee { "<-".to_string() } else { String::new() },
        ]);
    }
    let met = rec.knee_tenants.iter().filter(|t| t.slo_met).count();
    t.note(format!(
        "{} tenants (Zipf 1.0), {} requests/point, seed {:#x}; load = requests per mean service time",
        rec.tenants, rec.requests, rec.seed
    ));
    t.note(format!(
        "knee at {} ({} of {} tenants met their SLO there); all latencies are virtual time, so the sweep is bit-for-bit deterministic",
        rec.sweep[rec.knee].load,
        met,
        rec.knee_tenants.len()
    ));
    if !rec.tail_attribution.is_empty() {
        let parts: Vec<String> = rec
            .tail_attribution
            .iter()
            .map(|ta| {
                format!(
                    "t{} p99={} <- {} (exemplars {:?})",
                    ta.tenant,
                    fmt_dur(ta.p99),
                    ta.dominant.name(),
                    ta.exemplars
                )
            })
            .collect();
        t.note(format!("tail attribution at the knee: {}", parts.join("; ")));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_saturates_as_load_grows() {
        let rec = measure(true);
        assert_eq!(rec.sweep.len(), levels(true).len());
        let first = &rec.sweep[0];
        let last = rec.sweep.last().unwrap();
        assert!(
            last.p99 >= first.p99,
            "heavier load cannot shrink the tail: {:?} vs {:?}",
            last.p99,
            first.p99
        );
        assert!(rec.knee < rec.sweep.len());
        assert_eq!(rec.knee_tenants.len(), rec.tenants);
        assert!(!rec.util_curve.is_empty(), "traced runs carry a utilization curve");
        assert!(
            !rec.tail_attribution.is_empty(),
            "traced knee run carries tail attribution"
        );
        for ta in &rec.tail_attribution {
            assert!(!ta.exemplars.is_empty(), "tenant {} has exemplars", ta.tenant);
            assert!(ta.total.total() > SimDuration::ZERO);
        }
        assert!(!rec.burn.is_empty(), "SLO-carrying tenants burn budget visibly");
    }

    #[test]
    fn record_is_deterministic() {
        let a = measure(true);
        let b = measure(true);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn table_marks_exactly_one_knee() {
        let t = run(true);
        let marks = t.rows.iter().filter(|r| r.last().map(String::as_str) == Some("<-")).count();
        assert_eq!(marks, 1);
    }
}
