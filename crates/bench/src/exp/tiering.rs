//! E14 — hotness-driven tiering (the RTS's "optimize the placement of
//! memory regions ... pointer tagging to track the hotness of pages or
//! objects" discussion, Challenges 1-3).
//!
//! A working set of many regions starts spread across DRAM / CXL / far
//! memory with no knowledge of future access patterns. Accesses follow a
//! Zipf distribution over regions; after every epoch the tiering policy
//! promotes what turned out hot and demotes what turned out cold. The
//! assertable shape: with tiering on, per-epoch access time converges
//! well below the static placement; the first epoch pays a migration
//! toll.

use disagg_hwsim::contention::BandwidthLedger;
use disagg_hwsim::device::AccessPattern;
use disagg_hwsim::presets::single_server;
use disagg_hwsim::rng::SimRng;
use disagg_hwsim::time::{SimDuration, SimTime};
use disagg_hwsim::trace::Trace;
use disagg_region::access::Accessor;
use disagg_region::hotness::HotnessTracker;
use disagg_region::migrate::{migrate, TieringPolicy};
use disagg_region::pool::RegionId;
use disagg_region::props::{AccessMode, PropertySet};
use disagg_region::region::{OwnerId, RegionManager};
use disagg_region::typed::RegionType;
use disagg_workloads::gen::Zipf;

use crate::{fmt_dur, fmt_ratio, Table};

const WHO: OwnerId = OwnerId::App;

/// Per-epoch measurements for one configuration.
#[derive(Debug, Clone)]
pub struct EpochSeries {
    /// Configuration label.
    pub config: &'static str,
    /// Access time per epoch (excluding migration).
    pub epoch_access: Vec<SimDuration>,
    /// Migration time per epoch (zero when tiering is off).
    pub epoch_migration: Vec<SimDuration>,
}

/// Runs `epochs` of Zipf-skewed accesses over `regions` regions, with or
/// without a tiering pass between epochs.
pub fn measure_one(tiering_on: bool, quick: bool) -> EpochSeries {
    let (topo, h) = single_server();
    let regions_n = 48usize;
    let region_bytes: u64 = 2 << 20;
    let epochs = if quick { 5 } else { 8 };
    let accesses_per_epoch = if quick { 400 } else { 2_000 };

    let mut mgr = RegionManager::new(&topo);
    let mut ledger = BandwidthLedger::default_buckets();
    let mut trace = Trace::disabled();
    let props = PropertySet::new().with_mode(AccessMode::Async);

    // Initial spread: round-robin DRAM / CXL / far (placement made with
    // zero knowledge of the future access skew).
    let homes = [h.dram, h.cxl, h.far];
    let ids: Vec<RegionId> = (0..regions_n)
        .map(|i| {
            mgr.alloc(
                homes[i % homes.len()],
                region_bytes,
                RegionType::GlobalScratch,
                props.clone(),
                WHO,
                SimTime::ZERO,
            )
            .expect("region fits")
        })
        .collect();

    let zipf = Zipf::new(regions_n, 1.1);
    let mut rng = SimRng::new(99);
    let mut tracker = HotnessTracker::new();
    // Tier order restricted to the three homes: tiering moves data among
    // the pool tiers, not onto the CPU cache.
    let mut policy = TieringPolicy::new(vec![h.dram, h.cxl, h.far]);
    policy.promote_score = 4.0;
    policy.demote_score = 0.5;

    let mut now = SimTime::ZERO;
    let mut epoch_access = Vec::with_capacity(epochs);
    let mut epoch_migration = Vec::with_capacity(epochs);
    let mut buf = vec![0u8; 64 << 10];
    for _ in 0..epochs {
        // The access epoch.
        let mut acc = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, h.cpu, WHO, now);
        for _ in 0..accesses_per_epoch {
            let r = ids[zipf.sample(&mut rng)];
            let off = rng.next_below(region_bytes - buf.len() as u64);
            acc.read(r, off, &mut buf, AccessPattern::Sequential)
                .expect("read");
            tracker.record(r, buf.len() as u64, acc.now);
        }
        let end = acc.now;
        epoch_access.push(end - now);
        now = end;

        // The tiering pass.
        let mut mig_time = SimDuration::ZERO;
        if tiering_on {
            for (id, to) in policy.plan(&mgr, &topo, &tracker) {
                let (_, took) =
                    migrate(&mut mgr, &topo, &mut ledger, &mut trace, id, to, now)
                        .expect("migration");
                mig_time = mig_time.max(took);
            }
            now += mig_time;
        }
        epoch_migration.push(mig_time);
        tracker.decay();
    }
    EpochSeries {
        config: if tiering_on { "tiering on" } else { "static spread" },
        epoch_access,
        epoch_migration,
    }
}

/// Runs E14.
pub fn run(quick: bool) -> Table {
    let off = measure_one(false, quick);
    let on = measure_one(true, quick);
    let mut t = Table::new(
        "tiering",
        "Hotness-driven tiering: per-epoch access time, static vs tiered",
        &["Epoch", "Static spread", "Tiering on", "Migration cost", "Speedup"],
    );
    for i in 0..off.epoch_access.len() {
        t.row(vec![
            format!("{}", i + 1),
            fmt_dur(off.epoch_access[i]),
            fmt_dur(on.epoch_access[i]),
            fmt_dur(on.epoch_migration[i]),
            fmt_ratio(
                off.epoch_access[i].as_nanos_f64() / on.epoch_access[i].as_nanos_f64(),
            ),
        ]);
    }
    t.note("Zipf(1.1) accesses over 48 regions spread round-robin across DRAM/CXL/far memory");
    t.note("hot regions promote to DRAM after the first epoch; the migration toll amortizes");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiering_converges_to_a_faster_steady_state() {
        let off = measure_one(false, true);
        let on = measure_one(true, true);
        let last = off.epoch_access.len() - 1;
        let speedup = off.epoch_access[last].as_nanos_f64()
            / on.epoch_access[last].as_nanos_f64();
        assert!(
            speedup > 1.5,
            "steady-state speedup {speedup:.2} should exceed 1.5x"
        );
    }

    #[test]
    fn static_spread_never_improves() {
        let off = measure_one(false, true);
        let first = off.epoch_access[0].as_nanos_f64();
        let last = off.epoch_access.last().unwrap().as_nanos_f64();
        assert!(
            (last / first) > 0.8 && (last / first) < 1.2,
            "static epochs should be flat, got first {first} last {last}"
        );
    }

    #[test]
    fn migration_happens_early_then_subsides() {
        let on = measure_one(true, true);
        assert!(
            on.epoch_migration[0] > SimDuration::ZERO,
            "first epoch should migrate"
        );
        let late = *on.epoch_migration.last().unwrap();
        assert!(
            late <= on.epoch_migration[0],
            "late migrations {late} should not exceed the initial burst {}",
            on.epoch_migration[0]
        );
    }
}
