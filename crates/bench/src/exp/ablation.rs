//! E13 — ablations: what each RTS ingredient buys.
//!
//! Starting from the full vision configuration, each row knocks out one
//! ingredient and reruns the same mixed batch (DBMS + ML + streaming):
//!
//! - topology-blind cost model (no path awareness),
//! - round-robin scheduling (no HEFT),
//! - copy-based handover (no ownership transfer),
//! - worst-feasible placement (no optimizer at all).

use disagg_core::prelude::*;
use disagg_hwsim::presets::single_server;
use disagg_sched::cost::TopologyAwareness;
use disagg_workloads::{dbms, ml, streaming};

use crate::{fmt_dur, fmt_ratio, Table};

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub config: &'static str,
    /// Mixed-batch makespan.
    pub makespan: SimDuration,
}

fn batch(quick: bool) -> Vec<JobSpec> {
    let scale = if quick { 1 } else { 4 };
    vec![
        dbms::query_job(dbms::DbmsConfig {
            tuples: 4_000 * scale,
            probe_tuples: 2_000 * scale,
            ..dbms::DbmsConfig::default()
        }),
        ml::training_job(ml::MlConfig {
            samples: 2_048 * scale,
            epochs: 2,
            ..ml::MlConfig::default()
        }),
        streaming::windowed_job(streaming::StreamConfig {
            events: 5_000 * scale,
            ..streaming::StreamConfig::default()
        }),
    ]
}

/// Runs the mixed batch under each configuration.
pub fn measure(quick: bool) -> Vec<AblationRow> {
    let configs: Vec<(&'static str, RuntimeConfig)> = vec![
        ("full vision (baseline)", RuntimeConfig::traced()),
        (
            "- topology awareness",
            RuntimeConfig::traced().with_awareness(TopologyAwareness::Blind),
        ),
        (
            "- HEFT (round-robin)",
            RuntimeConfig::traced().with_sched(SchedPolicy::RoundRobin),
        ),
        (
            "- ownership transfer (copy)",
            RuntimeConfig::traced().with_handover(HandoverPolicy::AlwaysCopy),
        ),
        (
            "- optimizer (worst feasible)",
            RuntimeConfig::traced().with_placement(PlacementPolicy::WorstFeasible),
        ),
    ];
    configs
        .into_iter()
        .map(|(name, config)| {
            let (topo, _) = single_server();
            let mut rt = Runtime::new(topo, config);
            let report = rt.execute(batch(quick)).expect("batch runs");
            AblationRow {
                config: name,
                makespan: report.makespan,
            }
        })
        .collect()
}

/// Runs E13.
pub fn run(quick: bool) -> Table {
    let rows = measure(quick);
    let base = rows[0].makespan.as_nanos_f64();
    let mut t = Table::new(
        "ablation",
        "Ablations: removing one RTS ingredient at a time",
        &["Configuration", "Makespan", "Slowdown vs full"],
    );
    for r in &rows {
        t.row(vec![
            r.config.to_string(),
            fmt_dur(r.makespan),
            fmt_ratio(r.makespan.as_nanos_f64() / base),
        ]);
    }
    t.note("mixed batch: DBMS query + ML training + streaming windows, co-scheduled");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ablation_beats_the_full_configuration_badly() {
        // Individual knobs can jitter a few percent on the quick batch;
        // nothing should *substantially* beat the full configuration.
        let rows = measure(true);
        let base = rows[0].makespan.as_nanos_f64();
        for r in &rows[1..] {
            assert!(
                r.makespan.as_nanos_f64() >= base * 0.75,
                "{} beat the full config by >25%: {} vs {}",
                r.config,
                r.makespan,
                rows[0].makespan
            );
        }
    }

    #[test]
    fn scheduler_and_optimizer_are_the_load_bearing_ingredients() {
        let rows = measure(true);
        let base = rows[0].makespan.as_nanos_f64();
        let slowdown = |name: &str| {
            rows.iter()
                .find(|r| r.config.contains(name))
                .unwrap()
                .makespan
                .as_nanos_f64()
                / base
        };
        assert!(
            slowdown("HEFT") > 1.5,
            "removing HEFT should hurt >1.5x, got {:.2}",
            slowdown("HEFT")
        );
        assert!(
            slowdown("optimizer") > 1.5,
            "removing the optimizer should hurt >1.5x, got {:.2}",
            slowdown("optimizer")
        );
    }

    #[test]
    fn results_stay_correct_under_every_ablation() {
        // Ablations change performance, never answers: the workload tests
        // inside each body (assertions in the tasks) all passed, so a
        // successful run is itself the correctness check here.
        for r in measure(true) {
            assert!(r.makespan > SimDuration::ZERO, "{}", r.config);
        }
    }
}
