//! The benchmark harness: one experiment per table/figure of the paper,
//! plus one per quantitative claim in its text.
//!
//! Each experiment module exposes `run(quick) -> Table`; the `exp_*`
//! binaries print them and `exp_all` regenerates the full evaluation.
//! `quick = true` shrinks workloads for CI/tests; the *shape* assertions
//! in each module's tests hold in both modes.
//!
//! | Experiment | Paper artifact | Binary |
//! |---|---|---|
//! | [`exp::table1`] | Table 1 (device properties) | `exp_table1` |
//! | [`exp::table2`] | Table 2 (region types → devices) | `exp_table2` |
//! | [`exp::table3`] | Table 3 (application types) | `exp_table3` |
//! | [`exp::fig1`] | Figure 1 (compute- vs memory-centric) | `exp_fig1` |
//! | [`exp::fig2`] | Figure 2 (hospital dataflow) | `exp_fig2` |
//! | [`exp::fig3`] | Figure 3 (per-device region mapping) | `exp_fig3` |
//! | [`exp::fig4`] | Figure 4 (ownership transfer vs copy) | `exp_fig4` |
//! | [`exp::numa`] | §1 "NUMA up to 3×" | `exp_numa` |
//! | [`exp::naive`] | §1 "naïve placement up to 3×" | `exp_naive` |
//! | [`exp::asynk`] | §2.2(3) sync/async crossover | `exp_async` |
//! | [`exp::fig1`] | §1 utilization / cost claims (E11) | `exp_fig1` |
//! | [`exp::ftol`] | Challenge 8(3) replication vs erasure coding | `exp_ftol` |
//! | [`exp::tiering`] | hotness-driven tiering (Challenges 1-3) | `exp_tiering` |
//! | [`exp::ablation`] | design-choice ablations | `exp_ablation` |

pub mod driver;
pub mod exp;
pub mod harness;

use disagg_hwsim::time::SimDuration;

/// A rendered experiment result: paper-style rows plus notes.
#[derive(Debug, Clone)]
pub struct Table {
    /// Short id ("table1", "fig4", ...).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (expected shape, observations).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} [{}] ==\n", self.title, self.id));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Renders as a Markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} (`{}`)\n\n", self.title, self.id));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            "---|".repeat(self.headers.len())
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out.push('\n');
        out
    }

    /// Finds a cell by row label (first column) and column header.
    pub fn cell(&self, row_label: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        self.rows
            .iter()
            .find(|r| r[0] == row_label)
            .map(|r| r[col].as_str())
    }
}

/// Formats bytes human-readably.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

/// Formats a duration for table cells.
pub fn fmt_dur(d: SimDuration) -> String {
    d.to_string()
}

/// Formats a ratio like "2.9x".
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Parses a ratio cell back ("2.90x" → 2.9) — used by shape tests.
pub fn parse_ratio(s: &str) -> f64 {
    s.trim_end_matches('x').parse().expect("ratio cell")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_markdown() {
        let mut t = Table::new("t", "Test", &["Name", "Value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "2".into()]);
        t.note("a note");
        let ascii = t.render();
        assert!(ascii.contains("longer-name"));
        assert!(ascii.contains("note: a note"));
        let md = t.render_markdown();
        assert!(md.contains("| Name | Value |"));
        assert!(md.contains("| a | 1 |"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn wrong_arity_rows_panic() {
        let mut t = Table::new("t", "Test", &["A", "B"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn cell_lookup_works() {
        let mut t = Table::new("t", "Test", &["Name", "Value"]);
        t.row(vec!["a".into(), "1".into()]);
        assert_eq!(t.cell("a", "Value"), Some("1"));
        assert_eq!(t.cell("missing", "Value"), None);
        assert_eq!(t.cell("a", "Missing"), None);
    }

    #[test]
    fn byte_and_ratio_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 30), "3.0 GiB");
        assert_eq!(fmt_ratio(2.9), "2.90x");
        assert!((parse_ratio("2.90x") - 2.9).abs() < 1e-9);
    }
}
