//! Minimal, dependency-free micro-benchmark harness.
//!
//! `cargo bench` entry points use this instead of an external harness so
//! the workspace builds with no crates.io dependencies. It follows the
//! usual warmup + timed-batch shape: each benchmark body is run until
//! either `max_iters` iterations or `max_time` wall-clock elapses, and
//! per-iteration statistics are printed in a fixed-width table.

use std::time::{Duration, Instant};

/// Tunables for one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    /// Untimed warmup iterations (amortizes cold caches / lazy init).
    pub warmup_iters: u32,
    /// Upper bound on timed iterations.
    pub max_iters: u32,
    /// Upper bound on total timed wall-clock.
    pub max_time: Duration,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            warmup_iters: 3,
            max_iters: 200,
            max_time: Duration::from_millis(500),
        }
    }
}

/// Summary of one benchmark: iteration count and per-iter latencies.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    pub iters: u32,
    pub mean: Duration,
    pub min: Duration,
    pub max: Duration,
}

/// Times `body` under `opts` and returns the per-iteration stats.
pub fn bench_with<F: FnMut()>(opts: BenchOpts, mut body: F) -> BenchStats {
    for _ in 0..opts.warmup_iters {
        body();
    }
    let mut iters = 0u32;
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    while iters < opts.max_iters && total < opts.max_time {
        let t = Instant::now();
        body();
        let d = t.elapsed();
        total += d;
        min = min.min(d);
        max = max.max(d);
        iters += 1;
    }
    BenchStats {
        iters,
        mean: total / iters.max(1),
        min,
        max,
    }
}

/// Runs `body` under default opts and prints one table row for `name`.
pub fn bench<F: FnMut()>(name: &str, body: F) -> BenchStats {
    bench_named(name, BenchOpts::default(), body)
}

/// Like [`bench`] but with explicit opts.
pub fn bench_named<F: FnMut()>(name: &str, opts: BenchOpts, body: F) -> BenchStats {
    let stats = bench_with(opts, body);
    println!(
        "{name:<34} {:>6} iters  mean {:>12?}  min {:>12?}  max {:>12?}",
        stats.iters, stats.mean, stats.min, stats.max
    );
    stats
}

/// Prints the standard header line for a benchmark table.
pub fn header(title: &str) {
    println!("== {title} ==");
    println!(
        "{:<34} {:>12} {:>17} {:>16} {:>16}",
        "benchmark", "iterations", "mean", "min", "max"
    );
}
