//! Regenerates the sync/async crossover experiment. Pass `--quick` for a
//! fast run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", disagg_bench::exp::asynk::run(quick).render());
}
