//! Regenerates the batch-vs-stream pipelining experiment. Pass `--quick`
//! for a fast run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", disagg_bench::exp::stream::run(quick).render());
}
