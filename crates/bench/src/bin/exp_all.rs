//! Runs the entire evaluation and prints every table (ASCII), or emits
//! the Markdown used in EXPERIMENTS.md with `--markdown`. `--quick`
//! shrinks workloads.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    for (id, runner) in disagg_bench::exp::all() {
        eprintln!("running {id} ...");
        let table = runner(quick);
        if markdown {
            println!("{}", table.render_markdown());
        } else {
            println!("{}", table.render());
        }
    }
}
