//! Regenerates the serving-sweep artifact. Pass `--quick` for a fast run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", disagg_bench::exp::serving::run(quick).render());
}
