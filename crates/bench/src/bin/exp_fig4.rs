//! Regenerates the paper's fig4 artifact. Pass `--quick` for a fast run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", disagg_bench::exp::fig4::run(quick).render());
}
