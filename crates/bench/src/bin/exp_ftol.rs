//! Regenerates the paper's ftol artifact. Pass `--quick` for a fast run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", disagg_bench::exp::ftol::run(quick).render());
}
