//! Regenerates the paper's naive artifact. Pass `--quick` for a fast run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", disagg_bench::exp::naive::run(quick).render());
}
