//! Parallel experiment driver: fans the `exp_*` suite across cores,
//! measures simulator throughput, and emits `BENCH_disagg.json`.
//!
//! Stdout carries only the deterministic experiment tables (in registry
//! order — byte-identical between serial and parallel runs, and across
//! repeated runs). Timing lives on stderr and in the JSON record.
//!
//! Flags:
//!   --quick          shrink workloads (CI mode)
//!   --serial         run on one thread (reference path)
//!   --threads N      worker count (default: available parallelism)
//!   --only a,b       run only the listed experiment ids
//!   --json PATH      where to write the benchmark record
//!                    (default BENCH_disagg.json; --no-json disables)
//!   --no-thru        skip the throughput measurement
//!   --verify         additionally run serially and fail (exit 1) if
//!                    parallel output is not byte-identical

use std::io::Write;

use disagg_bench::driver;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let quick = flag("--quick");
    let verify = flag("--verify");
    let no_json = flag("--no-json");
    let no_thru = flag("--no-thru");
    let json_path = value("--json").unwrap_or_else(|| "BENCH_disagg.json".to_string());
    let threads = if flag("--serial") {
        1
    } else {
        value("--threads")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    };
    let only: Vec<String> = value("--only")
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_default();

    let t0 = std::time::Instant::now();
    let results = driver::run_experiments(&only, quick, threads);
    if results.is_empty() && !only.is_empty() {
        eprintln!("no experiment matches --only {}", only.join(","));
        std::process::exit(2);
    }
    for r in &results {
        print!("{}", r.output);
        println!();
        eprintln!("{:<10} {:>10.3}s", r.id, r.wall.as_secs_f64());
    }
    eprintln!(
        "suite: {} experiments on {} thread(s) in {:.3}s",
        results.len(),
        threads,
        t0.elapsed().as_secs_f64()
    );

    if verify {
        let serial = driver::run_experiments(&only, quick, 1);
        let parallel_out: String = results.iter().map(|r| r.output.as_str()).collect();
        let serial_out: String = serial.iter().map(|r| r.output.as_str()).collect();
        if parallel_out != serial_out {
            eprintln!("VERIFY FAILED: parallel output differs from serial run");
            std::process::exit(1);
        }
        eprintln!("verify: parallel output byte-identical to serial");
    }

    let throughputs: Vec<driver::Throughput> = if no_thru {
        Vec::new()
    } else {
        let reps = if quick { 1 } else { 3 };
        driver::throughput_suite(quick)
            .into_iter()
            .map(|(j, l, w)| {
                let t = driver::measure_throughput(j, l, w, reps);
                eprintln!(
                    "throughput {}: {} tasks, {} events, {:.4}s → {:.0} events/sec ({:.0} tasks/sec)",
                    t.name,
                    t.tasks,
                    t.events,
                    t.wall.as_secs_f64(),
                    t.events_per_sec(),
                    t.tasks_per_sec()
                );
                t
            })
            .collect()
    };

    if !no_json {
        let json = driver::bench_json(&results, &throughputs, quick, threads);
        match std::fs::File::create(&json_path).and_then(|mut f| f.write_all(json.as_bytes())) {
            Ok(()) => eprintln!("wrote {json_path}"),
            Err(e) => {
                eprintln!("failed to write {json_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
