//! Parallel experiment driver: fans the `exp_*` suite across cores,
//! measures simulator throughput, and emits `BENCH_disagg.json`.
//!
//! Stdout carries only the deterministic experiment tables (in registry
//! order — byte-identical between serial and parallel runs, and across
//! repeated runs). Timing lives on stderr and in the JSON record.
//!
//! Flags:
//!   --quick          shrink workloads (CI mode)
//!   --serial         run on one thread (reference path)
//!   --threads N      worker count (default: available parallelism)
//!   --only a,b       run only the listed experiment ids
//!   --json PATH      where to write the benchmark record
//!                    (default BENCH_disagg.json; --no-json disables)
//!   --no-thru        skip the throughput measurement
//!   --thru-only      skip the experiment suite and chaos record; only
//!                    measure throughput (what scripts/bench_guard.sh
//!                    runs)
//!   --shards N       drive the throughput stress runs on N event-loop
//!                    shards (default 1; results are bit-for-bit
//!                    shard-invariant, so only wall-clock moves)
//!   --no-scaling     skip the shard-scaling sweep
//!   --verify         additionally run serially and fail (exit 1) if
//!                    parallel output is not byte-identical
//!   --trace-out DIR  re-run each experiment's representative workload
//!                    with a full observer and write Perfetto-loadable
//!                    Chrome traces, folded flamegraph stacks, and
//!                    critical-path reports under DIR (validated before
//!                    writing; exit 1 on an invalid trace); also writes
//!                    a traced serving pass as serving.trace.json (one
//!                    request-span lane per tenant) plus the
//!                    exemplar-only serving.exemplars.trace.json
//!   --metrics-out P  write the per-experiment metrics snapshots as one
//!                    JSON object to P

use std::io::Write;

use disagg_bench::driver;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let quick = flag("--quick");
    let verify = flag("--verify");
    let no_json = flag("--no-json");
    let no_thru = flag("--no-thru");
    let thru_only = flag("--thru-only");
    let no_scaling = flag("--no-scaling");
    let shards: usize = value("--shards").and_then(|v| v.parse().ok()).unwrap_or(1);
    let json_path = value("--json").unwrap_or_else(|| "BENCH_disagg.json".to_string());
    let threads = if flag("--serial") {
        1
    } else {
        value("--threads")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    };
    let only: Vec<String> = value("--only")
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_default();

    let t0 = std::time::Instant::now();
    let results = if thru_only {
        Vec::new()
    } else {
        driver::run_experiments(&only, quick, threads)
    };
    if !thru_only && results.is_empty() && !only.is_empty() {
        eprintln!("no experiment matches --only {}", only.join(","));
        std::process::exit(2);
    }
    for r in &results {
        print!("{}", r.output);
        println!();
        eprintln!("{:<10} {:>10.3}s", r.id, r.wall.as_secs_f64());
    }
    eprintln!(
        "suite: {} experiments on {} thread(s) in {:.3}s",
        results.len(),
        threads,
        t0.elapsed().as_secs_f64()
    );

    if verify {
        let serial = driver::run_experiments(&only, quick, 1);
        let parallel_out: String = results.iter().map(|r| r.output.as_str()).collect();
        let serial_out: String = serial.iter().map(|r| r.output.as_str()).collect();
        if parallel_out != serial_out {
            eprintln!("VERIFY FAILED: parallel output differs from serial run");
            std::process::exit(1);
        }
        eprintln!("verify: parallel output byte-identical to serial");
    }

    let trace_out = value("--trace-out");
    let metrics_out = value("--metrics-out");
    if trace_out.is_some() || metrics_out.is_some() {
        if let Some(dir) = &trace_out {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("failed to create {dir}: {e}");
                std::process::exit(1);
            }
        }
        let mut metrics_entries: Vec<(String, String)> = Vec::new();
        for r in &results {
            let Some(outcome) = driver::observed_artifacts(r.id, quick) else {
                continue;
            };
            let art = match outcome {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            };
            if let Some(dir) = &trace_out {
                let write = |name: &str, body: &str| {
                    let path = format!("{dir}/{name}");
                    if let Err(e) = std::fs::write(&path, body) {
                        eprintln!("failed to write {path}: {e}");
                        std::process::exit(1);
                    }
                };
                write(&format!("{}.trace.json", art.id), &art.chrome_trace);
                write(&format!("{}.folded.txt", art.id), &art.folded);
                write(&format!("{}.critical.txt", art.id), &art.critical_paths);
                eprintln!("trace artifacts: {dir}/{}.{{trace.json,folded.txt,critical.txt}}", art.id);
            }
            metrics_entries.push((art.id.clone(), art.metrics_json.clone()));
        }
        // A traced serving pass rides along: the full device+tenant
        // trace plus the exemplar-only tail view, both validated.
        if let Some(dir) = &trace_out {
            match driver::serving_trace_artifacts(quick) {
                Ok((full, exemplars)) => {
                    for (name, body) in [
                        ("serving.trace.json", &full),
                        ("serving.exemplars.trace.json", &exemplars),
                    ] {
                        let path = format!("{dir}/{name}");
                        if let Err(e) = std::fs::write(&path, body) {
                            eprintln!("failed to write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                    eprintln!(
                        "trace artifacts: {dir}/serving.{{trace.json,exemplars.trace.json}}"
                    );
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &metrics_out {
            let body = format!(
                "{{\n{}\n}}\n",
                metrics_entries
                    .iter()
                    .map(|(id, m)| format!("  \"{id}\": {m}"))
                    .collect::<Vec<_>>()
                    .join(",\n")
            );
            match std::fs::File::create(path).and_then(|mut f| f.write_all(body.as_bytes())) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    let reps = if quick { 1 } else { 3 };
    let throughputs: Vec<driver::Throughput> = if no_thru {
        Vec::new()
    } else {
        driver::throughput_suite(quick)
            .into_iter()
            .map(|(j, l, w)| {
                let t = driver::measure_throughput(j, l, w, reps, shards);
                eprintln!(
                    "throughput {} ({} shard(s)): {} tasks, {} events, {:.4}s → {:.0} events/sec ({:.0} tasks/sec)",
                    t.name,
                    shards,
                    t.tasks,
                    t.events,
                    t.wall.as_secs_f64(),
                    t.events_per_sec(),
                    t.tasks_per_sec()
                );
                t
            })
            .collect()
    };
    let throughputs: Vec<driver::Throughput> = if no_thru {
        throughputs
    } else {
        // The serving mix rides along in the same guarded format.
        let mut all = throughputs;
        let t = driver::measure_serving_throughput(reps, quick);
        eprintln!(
            "throughput {} ({} shard(s)): {} tasks, {} events, {:.4}s → {:.0} events/sec ({:.0} tasks/sec)",
            t.name,
            shards,
            t.tasks,
            t.events,
            t.wall.as_secs_f64(),
            t.events_per_sec(),
            t.tasks_per_sec()
        );
        all.push(t);
        all
    };

    // Shard-scaling sweep: the largest stress configuration driven at
    // 1/2/4/8 shards (quick mode shrinks the workload and the counts).
    let scaling: Vec<driver::ShardScalingRow> = if no_thru || no_scaling {
        Vec::new()
    } else {
        let ((j, l, w), counts): ((usize, usize, usize), &[usize]) = if quick {
            ((4, 8, 8), &[1, 4])
        } else {
            ((16, 24, 24), &[1, 2, 4, 8])
        };
        let rows = driver::measure_shard_scaling(j, l, w, reps, counts);
        for r in &rows {
            eprintln!(
                "shard_scaling {} @{} shard(s): {} events, {:.4}s → {:.0} events/sec",
                r.name,
                r.shards,
                r.events,
                r.wall.as_secs_f64(),
                r.events_per_sec()
            );
        }
        rows
    };

    if !no_json {
        // The chaos section carries only virtual-time fields, so the
        // record's chaos entries are byte-identical between runs.
        let chaos = if !thru_only && (only.is_empty() || only.iter().any(|o| o == "chaos")) {
            driver::chaos_record(quick)
        } else {
            Vec::new()
        };
        // Like chaos, the serving section is virtual-time-only and
        // byte-identical between runs.
        let serving = if !thru_only && (only.is_empty() || only.iter().any(|o| o == "serving")) {
            Some(driver::serving_record(quick))
        } else {
            None
        };
        // The chaos-under-load sweep nests under `serving.chaos`; like
        // the sections above it is virtual-time-only and byte-identical
        // between runs.
        let chaos_serve =
            if !thru_only && (only.is_empty() || only.iter().any(|o| o == "chaos_serve")) {
                Some(driver::chaos_serve_record(quick))
            } else {
                None
            };
        let json = driver::bench_json(
            &results,
            &throughputs,
            &scaling,
            &chaos,
            serving.as_ref(),
            chaos_serve.as_ref(),
            quick,
            threads,
        );
        match std::fs::File::create(&json_path).and_then(|mut f| f.write_all(json.as_bytes())) {
            Ok(()) => eprintln!("wrote {json_path}"),
            Err(e) => {
                eprintln!("failed to write {json_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
