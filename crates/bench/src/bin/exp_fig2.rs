//! Regenerates the paper's fig2 artifact. Pass `--quick` for a fast run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", disagg_bench::exp::fig2::run(quick).render());
}
