//! Regenerates the paper's table3 artifact. Pass `--quick` for a fast run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", disagg_bench::exp::table3::run(quick).render());
}
