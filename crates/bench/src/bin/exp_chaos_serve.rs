//! Standalone runner for the chaos-under-load serving sweep (E18).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", disagg_bench::exp::chaos_serve::run(quick).render());
}
