//! Quickstart: declare a two-task dataflow, submit it, read the report.
//!
//! Run with: `cargo run --example quickstart`

use disagg::prelude::*;

fn main() {
    // A fully equipped server: CPU (cache/HBM/DRAM/PMem), GPU (GDDR),
    // CXL expander, SSD, HDD, and a far-memory blade behind the NIC.
    let (topo, _ids) = disagg::presets::single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());

    // Declare the dataflow. Note what is *absent*: no device names, no
    // addresses. Tasks describe requirements; the runtime places them.
    let mut job = JobBuilder::new("quickstart");
    let produce = job.task(
        TaskSpec::new("produce")
            .work(WorkClass::Vector, 100_000)
            .output_bytes(1 << 20)
            .body(|ctx| {
                let chunk = [7u8; 4096];
                for i in 0..256 {
                    ctx.write_output(i * 4096, &chunk)?;
                }
                Ok(())
            }),
    );
    let consume = job.task(
        TaskSpec::new("consume")
            .work(WorkClass::Scalar, 100_000)
            .mem_latency(LatencyClass::Low)
            .private_scratch(1 << 16)
            .body(|ctx| {
                let mut buf = vec![0u8; 1 << 20];
                ctx.read_input(0, &mut buf)?;
                assert!(buf.iter().all(|&b| b == 7), "handover preserved the bytes");
                ctx.scratch_write(0, &buf[..64])?;
                Ok(())
            }),
    );
    job.edge(produce, consume);

    let report = rt.execute(job.build().expect("valid DAG")).expect("runs");

    println!("makespan:            {}", report.makespan);
    println!("ownership transfers: {}", report.ownership_transfers);
    println!("handover copies:     {}", report.handover_copies);
    println!(
        "bytes moved {} vs handed over by ownership {}",
        report.bytes_moved, report.bytes_ownership_transferred
    );
    for t in &report.tasks {
        println!(
            "  task {:10} on {:3} [{} → {}]",
            t.name,
            rt.topology().compute(t.compute).kind.name(),
            t.start,
            t.finish
        );
        for (kind, region, dev) in &t.placements {
            println!(
                "      {kind:15} {region} on {}",
                rt.topology().mem(*dev).kind.name()
            );
        }
    }
    assert!(report.placements_clean());
    println!("all declared properties honored.");
}
