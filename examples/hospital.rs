//! The paper's Figure 2: the hospital CCTV dataflow.
//!
//! Five tasks — GPU preprocessing and face recognition over confidential
//! video, CPU bookkeeping, a public utilization feed, and persistent
//! caregiver alerts — with properties declared per task and enforced by
//! the runtime.
//!
//! Run with: `cargo run --example hospital`

use disagg::prelude::*;
use disagg::workloads::hospital::{decode_count, expected, hospital_job, HospitalConfig};
use disagg::workloads::util::final_output;

fn main() {
    let cfg = HospitalConfig::default();
    let truth = expected(&cfg);

    let (topo, _) = disagg::presets::single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let report = rt.execute(hospital_job(cfg)).expect("hospital job runs");

    println!("hospital dataflow: {} tasks, makespan {}", report.tasks.len(), report.makespan);
    for t in &report.tasks {
        let placements: Vec<String> = t
            .placements
            .iter()
            .map(|(k, _, d)| format!("{k}={}", rt.topology().mem(*d).kind.name()))
            .collect();
        println!(
            "  {:20} on {:3}  {}",
            t.name,
            rt.topology().compute(t.compute).kind.name(),
            placements.join(", ")
        );
    }

    let patients = decode_count(&final_output(&rt, &report, JobId(0), "alert-caregivers"));
    println!(
        "alerted {} missing patients (ground truth {}), {} faces recognized in total",
        patients, truth.patients, truth.faces
    );
    assert_eq!(patients, truth.patients);

    // The alert list was declared persistent: it outlives the job.
    let alert = report
        .task_by_name(JobId(0), "alert-caregivers")
        .expect("alert task ran");
    let (_, region, dev) = alert
        .placements
        .iter()
        .find(|(k, _, _)| *k == "output")
        .expect("alert output placed");
    println!(
        "alert list lives on persistent {} and survives the job: {}",
        rt.topology().mem(*dev).kind.name(),
        rt.manager().is_live(*region)
    );
    assert!(report.placements_clean());
}
