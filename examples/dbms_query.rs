//! DBMS pipeline (Table 3's database row): scan → hash aggregate → hash
//! join, with operator state in private scratch, latches in global state,
//! and a reusable hash index published through global scratch.
//!
//! Also demonstrates what placement quality is worth: the same query runs
//! under the declarative optimizer and under the worst feasible placement.
//!
//! Run with: `cargo run --example dbms_query`

use disagg::prelude::*;
use disagg::workloads::dbms::{decode_result, expected, query_job, DbmsConfig};
use disagg::workloads::util::final_output;

fn run_once(policy: PlacementPolicy, cfg: DbmsConfig) -> (SimDuration, (u64, u64, u64)) {
    let (topo, _) = disagg::presets::single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced().with_placement(policy));
    let report = rt.execute(query_job(cfg)).expect("query runs");
    let result = decode_result(&final_output(&rt, &report, JobId(0), "hash-join"));
    (report.makespan, result)
}

fn main() {
    let cfg = DbmsConfig::default();
    let truth = expected(&cfg);
    println!(
        "query: {} tuples, filter, group by key, probe {} tuples",
        cfg.tuples, cfg.probe_tuples
    );

    let (good_time, good) = run_once(PlacementPolicy::Declarative, cfg);
    let (bad_time, bad) = run_once(PlacementPolicy::WorstFeasible, cfg);

    assert_eq!(good, bad, "placement changes time, never answers");
    let (matches, groups, total) = good;
    println!(
        "result: {matches} join matches over {groups} groups (sum {total}) — ground truth {} / {} / {}",
        truth.join_matches, truth.groups, truth.total_sum
    );
    assert_eq!(matches, truth.join_matches);
    assert_eq!(groups as usize, truth.groups);
    assert_eq!(total, truth.total_sum);

    println!("declarative placement: {good_time}");
    println!("worst feasible:        {bad_time}");
    println!(
        "the optimizer is worth {:.2}x on this query",
        bad_time.as_nanos_f64() / good_time.as_nanos_f64()
    );
}
