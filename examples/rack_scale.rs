//! The whole vision on one rack: lean compute nodes over a CXL memory
//! pool, a mixed batch of application jobs admitted under a memory
//! watermark, hotness-driven tiering between batches, and the cross-layer
//! profile of where the time went.
//!
//! Run with: `cargo run --example rack_scale`

use disagg::prelude::*;
use disagg::region::migrate::TieringPolicy;
use disagg::workloads::{dbms, hospital, ml, streaming};

fn main() {
    // Figure 1b: three lean servers, a pooled fabric, persistent + far
    // blades (the preset adds one of each).
    let (topo, rack) = disagg::presets::disaggregated_rack(3, 16, 3, 128);
    println!(
        "rack: {} compute nodes, {} pool devices, {} total memory",
        rack.cpus.len(),
        rack.pool.len(),
        topo.total_mem_capacity() / (1 << 30)
    );
    let mut rt = Runtime::new(topo, RuntimeConfig::traced().with_admission(0.8));

    let jobs = vec![
        dbms::query_job(dbms::DbmsConfig {
            tuples: 8_000,
            probe_tuples: 4_000,
            ..dbms::DbmsConfig::default()
        }),
        ml::training_job(ml::MlConfig {
            samples: 4_096,
            epochs: 2,
            ..ml::MlConfig::default()
        }),
        streaming::windowed_job(streaming::StreamConfig {
            events: 8_000,
            ..streaming::StreamConfig::default()
        }),
        hospital::hospital_job(hospital::HospitalConfig::default()),
    ];
    let report = rt.execute(jobs).expect("the batch runs");

    println!(
        "batch: {} tasks, makespan {}, {} ownership transfers / {} copies",
        report.tasks.len(),
        report.makespan,
        report.ownership_transfers,
        report.handover_copies
    );
    println!(
        "moved {} bytes physically; {} handed over by ownership",
        report.bytes_moved, report.bytes_ownership_transferred
    );
    assert!(report.placements_clean());

    // Where did the time go, per abstraction layer?
    let profile = report.profile();
    let (compute, memory, runtime) = profile.totals();
    println!("layers: compute {compute}, memory stalls {memory}, runtime {runtime}");
    if let Some(worst) = profile.most_memory_bound() {
        println!(
            "most memory-bound task: '{}' ({:.0}% stalled)",
            worst.name,
            worst.memory_fraction() * 100.0
        );
    }

    // Between batches, the runtime re-tiers what survived (persistent
    // results) based on observed heat.
    let moved = rt
        .run_tiering(&TieringPolicy::by_latency(rt.topology()))
        .expect("tiering pass");
    println!("tiering pass migrated {} regions", moved.len());

    // Utilization per pool device.
    for d in &report.devices {
        if d.peak_bytes > 0 {
            println!(
                "  {:?}: peak {:.1}% of {} GiB",
                d.dev,
                d.peak_utilization() * 100.0,
                d.capacity >> 30
            );
        }
    }
}
