//! Out-of-order execution: a diamond DAG on two single-slot devices.
//!
//! source → {left, right} → sink. The discrete-event executor runs the
//! two arms concurrently on different devices, so the makespan beats
//! the serial sum of task durations.
//!
//! Run with: `cargo run --example diamond`

use disagg::hwsim::compute::ComputeModel;
use disagg::hwsim::device::{MemDeviceKind, MemDeviceModel};
use disagg::hwsim::topology::{Endpoint, LinkKind, Topology};
use disagg::prelude::*;

fn main() {
    // Two workers, each a single-slot CPU with local DRAM, joined by a
    // NUMA interconnect.
    let mut b = Topology::builder();
    let mut serial_cpu = ComputeModel::preset(ComputeKind::Cpu);
    serial_cpu.slots = 1;
    let w0 = b.node("worker0");
    let w1 = b.node("worker1");
    let cpu0 = b.compute(w0, serial_cpu.clone());
    let cpu1 = b.compute(w1, serial_cpu);
    let dram0 = b.mem(w0, MemDeviceModel::preset(MemDeviceKind::Dram));
    let dram1 = b.mem(w1, MemDeviceModel::preset(MemDeviceKind::Dram));
    b.link(cpu0, dram0, LinkKind::MemBus);
    b.link(cpu1, dram1, LinkKind::MemBus);
    b.link(cpu0, Endpoint::Hub(w0), LinkKind::MemBus);
    b.link(cpu1, Endpoint::Hub(w1), LinkKind::MemBus);
    b.link(Endpoint::Hub(w0), Endpoint::Hub(w1), LinkKind::Numa);
    b.link(Endpoint::Hub(w0), dram0, LinkKind::MemBus);
    b.link(Endpoint::Hub(w1), dram1, LinkKind::MemBus);
    let topo = b.build().expect("two-worker topology");

    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mut job = JobBuilder::new("diamond");
    let mk = |name: &str| {
        TaskSpec::new(name)
            .work(WorkClass::Scalar, 1_000_000)
            .output_bytes(4096)
            .body(|ctx| {
                ctx.compute(WorkClass::Scalar, 1_000_000);
                ctx.write_output(0, &[1u8; 4096])?;
                Ok(())
            })
    };
    let source = job.task(mk("source"));
    let left = job.task(mk("left"));
    let right = job.task(mk("right"));
    let sink = job.task(mk("sink"));
    job.edge(source, left);
    job.edge(source, right);
    job.edge(left, sink);
    job.edge(right, sink);

    let report = rt.execute(job.build().unwrap()).unwrap();
    let serial_sum: SimDuration = report.tasks.iter().map(|t| t.duration()).sum();

    println!("task        device  start         finish");
    for t in &report.tasks {
        println!(
            "{:<10}  {:?}  {:>12}  {:>12}",
            t.name, t.compute, t.start, t.finish
        );
    }
    println!();
    println!("serial sum of durations: {serial_sum}");
    println!("makespan:                {}", report.makespan);
    assert!(
        report.makespan < serial_sum,
        "the arms must overlap across the two devices"
    );
    println!(
        "overlap win:             {:.2}x",
        serial_sum.as_nanos_f64() / report.makespan.as_nanos_f64()
    );
}
