//! Fault-tolerant far memory: replication vs Carbink-style erasure
//! coding, with a real injected node crash, a degraded read, and full
//! recovery — Challenge 8(3) of the paper. The last act hands the same
//! problem to the runtime: a `RecoveryPolicy` detects a mid-task node
//! crash and a corruption burst, retries on a survivor, and reconstructs
//! the rotten bytes online.
//!
//! Run with: `cargo run --example far_memory_resilience`

use disagg::ftol::replicate::ReplicatedRegion;
use disagg::ftol::stripe::StripedRegion;
use disagg::hwsim::contention::BandwidthLedger;
use disagg::hwsim::fault::{FaultEvent, FaultInjector, FaultKind};
use disagg::hwsim::trace::TraceEvent;
use disagg::prelude::{RecoveryPolicy, Runtime, RuntimeConfig, SimDuration};
use disagg::presets::disaggregated_rack;
use disagg::hwsim::time::SimTime;
use disagg::region::region::{OwnerId, RegionManager};
use disagg::workloads::dbms;

const OWNER: OwnerId = OwnerId::App;

fn main() {
    let size: u64 = 8 << 20;
    let payload: Vec<u8> = (0..size).map(|i| (i * 131 % 251) as u8).collect();

    // --- 2x replication. ---
    let (topo, rack) = disaggregated_rack(2, 32, 6, 64);
    let mut mgr = RegionManager::new(&topo);
    let mut ledger = BandwidthLedger::default_buckets();
    let mut rr = ReplicatedRegion::create(&mut mgr, &topo, &rack.pool[..2], size, OWNER, SimTime::ZERO)
        .expect("replicas on distinct blades");
    let calm = FaultInjector::none();
    rr.write(&mut mgr, &topo, &mut ledger, &calm, 0, &payload, SimTime::ZERO)
        .expect("mirrored write");
    println!(
        "replication: {:.0}x storage, {} bytes written for {} logical",
        rr.overhead(),
        rr.bytes_written,
        size
    );

    let crash = FaultInjector::with_events(vec![FaultEvent {
        at: SimTime(1),
        kind: FaultKind::NodeCrash(topo.node_of_mem(rr.devs[0])),
    }]);
    let mut buf = vec![0u8; size as usize];
    let (took, replica) = rr
        .read(&mgr, &topo, &mut ledger, &crash, rack.cpus[0], 0, &mut buf, SimTime(10))
        .expect("survivor serves the read");
    assert_eq!(buf, payload);
    println!("  after a node crash, replica {replica} served the read in {took}");
    let recovery = rr
        .recover(&mut mgr, &topo, &mut ledger, &crash, 0, rack.pool[2], SimTime(20))
        .expect("re-replicate");
    println!("  redundancy restored in {recovery}");

    // --- RS(4+2) erasure coding. ---
    let (topo, rack) = disaggregated_rack(2, 32, 7, 64);
    let mut mgr = RegionManager::new(&topo);
    let mut ledger = BandwidthLedger::default_buckets();
    let mut sr = StripedRegion::create(&mut mgr, &topo, &rack.pool[..6], size, 4, 2, OWNER, SimTime::ZERO)
        .expect("stripes on distinct blades");
    sr.write(&mut mgr, &topo, &mut ledger, 0, &payload, SimTime::ZERO)
        .expect("striped write");
    println!(
        "erasure coding RS(4+2): {:.2}x storage, {} bytes written for {} logical",
        sr.overhead(),
        sr.bytes_written,
        size
    );

    let crash = FaultInjector::with_events(vec![FaultEvent {
        at: SimTime(1),
        kind: FaultKind::NodeCrash(topo.node_of_mem(sr.devs[1])),
    }]);
    let (took, degraded) = sr
        .read(&mgr, &topo, &mut ledger, &crash, 0, &mut buf, SimTime(10))
        .expect("degraded read reconstructs");
    assert!(degraded);
    assert_eq!(buf, payload, "Reed-Solomon reconstructed the exact bytes");
    println!("  after a node crash, a degraded read reconstructed the span in {took}");
    let recovery = sr
        .recover(&mut mgr, &topo, &mut ledger, &crash, 1, rack.pool[6], SimTime(20))
        .expect("rebuild span");
    println!("  lost span rebuilt in {recovery}");

    println!("the Carbink trade-off: less storage, slower failure path.");

    // --- The runtime does all of this by policy. ---
    let job = || {
        dbms::query_job(dbms::DbmsConfig {
            tuples: 4_000,
            probe_tuples: 2_000,
            ..dbms::DbmsConfig::default()
        })
    };
    let mut calm_rt = Runtime::new(disaggregated_rack(2, 16, 2, 64).0, RuntimeConfig::default());
    let baseline = calm_rt.execute(vec![job()]).expect("calm run").makespan;

    let (topo, rack) = disaggregated_rack(2, 16, 2, 64);
    let mut faults = FaultInjector::none();
    faults.schedule(SimTime(baseline.0 / 2), FaultKind::NodeCrash(rack.nodes[0]));
    faults.schedule(SimTime(baseline.0), FaultKind::NodeRecover(rack.nodes[0]));
    faults.schedule(
        SimTime(baseline.0 / 4),
        FaultKind::Corrupt { dev: rack.drams[0], offset: 0, len: 1 << 20 },
    );
    let policy = RecoveryPolicy::default()
        .with_max_retries(4)
        .with_detection_delay(SimDuration(2_000))
        .with_backoff(SimDuration(1_000));
    let mut rt = Runtime::new(
        topo,
        RuntimeConfig::traced().with_faults(faults).with_recovery(policy),
    );
    let report = rt.execute(vec![job()]).expect("recovery policy rides out the chaos");
    let (mut retries, mut detected, mut repaired) = (0u64, 0u64, 0u64);
    for e in rt.trace().events() {
        match e {
            TraceEvent::TaskRetry { .. } => retries += 1,
            TraceEvent::FaultDetected { .. } => detected += 1,
            TraceEvent::Reconstruct { bytes, .. } => repaired += bytes,
            _ => {}
        }
    }
    println!(
        "runtime recovery: crash + corruption survived in {} ({:.2}x the calm {});",
        report.makespan,
        report.makespan.as_nanos_f64() / baseline.as_nanos_f64(),
        baseline
    );
    println!(
        "  {detected} fault(s) detected, {retries} retry(ies), {repaired} corrupt bytes reconstructed online"
    );
}
