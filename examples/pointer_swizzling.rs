//! Remotable pointers and swizzling — the mechanism the paper's RTS
//! discussion builds on ("pointer tagging to track the hotness of pages
//! or objects and to implement remotable pointers that either point to
//! objects in local or in remote memory (pointer swizzling)").
//!
//! A linked list lives in far memory; its `next` pointers are 64-bit
//! [`TaggedPtr`]s carrying a device id, an offset, a hotness counter, and
//! a remote bit. Traversals chase pointers at far-memory latency. After a
//! few rounds the hot prefix is promoted to DRAM and its pointers are
//! *swizzled* (patched to the local copies) — subsequent traversals of
//! the hot prefix run at DRAM latency.
//!
//! Run with: `cargo run --example pointer_swizzling`

use disagg::hwsim::contention::BandwidthLedger;
use disagg::hwsim::device::AccessPattern;
use disagg::presets::single_server;
use disagg::hwsim::time::SimTime;
use disagg::hwsim::trace::Trace;
use disagg::region::access::Accessor;
use disagg::region::hotness::TaggedPtr;
use disagg::region::pool::RegionId;
use disagg::region::props::{AccessMode, PropertySet};
use disagg::region::region::{OwnerId, RegionManager};
use disagg::region::typed::RegionType;

const WHO: OwnerId = OwnerId::App;
/// One list node: a tagged next-pointer and 56 bytes of payload.
const NODE: u64 = 64;

fn read_node(acc: &mut Accessor<'_>, region: RegionId, offset: u64) -> TaggedPtr {
    let mut buf = [0u8; NODE as usize];
    acc.read(region, offset, &mut buf, AccessPattern::Random)
        .expect("node read");
    TaggedPtr::from_raw(u64::from_le_bytes(buf[..8].try_into().expect("8")))
}

fn write_node(acc: &mut Accessor<'_>, region: RegionId, offset: u64, next: TaggedPtr, tag: u8) {
    let mut buf = [tag; NODE as usize];
    buf[..8].copy_from_slice(&next.raw().to_le_bytes());
    acc.write(region, offset, &buf, AccessPattern::Random)
        .expect("node write");
}

fn main() {
    let (topo, h) = single_server();
    let mut mgr = RegionManager::new(&topo);
    let mut ledger = BandwidthLedger::default_buckets();
    let mut trace = Trace::disabled();

    let nodes: u64 = 512;
    let props = PropertySet::new().with_mode(AccessMode::Async);
    let far_region = mgr
        .alloc(h.far, nodes * NODE, RegionType::GlobalScratch, props.clone(), WHO, SimTime::ZERO)
        .expect("far list");
    let local_region = mgr
        .alloc(h.dram, nodes * NODE, RegionType::GlobalScratch, props, WHO, SimTime::ZERO)
        .expect("local mirror");

    // Build the list in far memory: node i → node i+1, all marked remote.
    {
        let mut acc =
            Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, h.cpu, WHO, SimTime::ZERO);
        for i in 0..nodes {
            let next = if i + 1 < nodes {
                TaggedPtr::pack(h.far, (i + 1) * NODE, 0, true)
            } else {
                TaggedPtr::pack(h.far, 0, 0, true) // Sentinel back to head.
            };
            write_node(&mut acc, far_region, i * NODE, next, i as u8);
        }
    }

    // A traversal chases `hot_len` pointers from the head.
    let hot_len: u64 = 64;
    let traverse = |mgr: &mut RegionManager, ledger: &mut BandwidthLedger| {
        let mut trace = Trace::disabled();
        let mut acc = Accessor::new(&topo, ledger, mgr, &mut trace, h.cpu, WHO, SimTime::ZERO);
        let mut ptr = TaggedPtr::pack(h.far, 0, 0, true);
        let mut hops = 0;
        while hops < hot_len {
            let region = if ptr.is_remote() { far_region } else { local_region };
            ptr = read_node(&mut acc, region, ptr.offset()).touched();
            hops += 1;
        }
        acc.now - SimTime::ZERO
    };

    let cold = traverse(&mut mgr, &mut ledger);
    println!("traversal over far memory:      {cold}");

    // Promote the hot prefix: copy nodes to DRAM and swizzle pointers so
    // the chain stays intact but points at the local copies.
    {
        let mut acc =
            Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, h.cpu, WHO, SimTime::ZERO);
        for i in 0..hot_len {
            let next_remote = read_node(&mut acc, far_region, i * NODE);
            let swizzled = if i + 1 < hot_len {
                // Next node will be local too: patch device + offset.
                next_remote.swizzle(h.dram, (i + 1) * NODE)
            } else {
                next_remote // Tail of the hot prefix stays remote.
            };
            write_node(&mut acc, local_region, i * NODE, swizzled, i as u8);
        }
        println!("promotion + swizzling cost:     {}", acc.now - SimTime::ZERO);
    }

    // Re-point the entry and traverse again: all hops are now local.
    let hot = {
        let mut trace = Trace::disabled();
        let mut acc =
            Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, h.cpu, WHO, SimTime::ZERO);
        let mut ptr = TaggedPtr::pack(h.dram, 0, 0, false);
        for _ in 0..hot_len {
            let region = if ptr.is_remote() { far_region } else { local_region };
            ptr = read_node(&mut acc, region, ptr.offset()).touched();
        }
        acc.now - SimTime::ZERO
    };
    println!("traversal after swizzling:      {hot}");

    let speedup = cold.as_nanos_f64() / hot.as_nanos_f64();
    println!("pointer chasing sped up {speedup:.1}x by swizzling the hot prefix local");
    assert!(speedup > 5.0, "swizzling should win big on pointer chases");
    let _ = traverse; // Silence the helper if unused in future edits.
}
