//! ML input pipeline + accelerator training (Table 3's AI/ML row),
//! Cachew-style: preprocess once into a shared cache in global scratch,
//! then train on the GPU with async reads overlapping tensor work.
//!
//! Run with: `cargo run --example ml_training`

use disagg::prelude::*;
use disagg::workloads::ml::{decode_model, expected_model, training_job, MlConfig};
use disagg::workloads::util::final_output;

fn main() {
    let cfg = MlConfig {
        samples: 8_192,
        features: 64,
        epochs: 4,
        seed: 7,
    };
    let (topo, _) = disagg::presets::single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let report = rt.execute(training_job(cfg)).expect("training runs");

    println!(
        "pipeline: ingest → preprocess → train ({} samples x {} features, {} epochs)",
        cfg.samples, cfg.features, cfg.epochs
    );
    for t in &report.tasks {
        println!(
            "  {:12} on {:3}  start {:>12}  finish {:>12}  async ops {}",
            t.name,
            rt.topology().compute(t.compute).kind.name(),
            t.start.to_string(),
            t.finish.to_string(),
            t.stats.async_ops
        );
    }

    let train = report.task_by_name(JobId(0), "train").expect("train ran");
    assert_eq!(
        rt.topology().compute(train.compute).kind,
        ComputeKind::Gpu,
        "tensor work belongs on the accelerator"
    );

    let model = decode_model(&final_output(&rt, &report, JobId(0), "train"));
    let truth = expected_model(&cfg);
    println!("trained model checksum {model:#018x} == reference {truth:#018x}");
    assert_eq!(model, truth);
    println!("makespan {}", report.makespan);
}
