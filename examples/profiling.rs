//! Profiling across abstraction layers (the paper's Challenge 8(1)).
//!
//! The runtime hides placement and movement decisions from the
//! application — but keeps the books. This example runs a deliberately
//! unbalanced job and shows how the profile pins each task's time to a
//! layer: application compute, programming-model memory stalls, or
//! runtime overhead.
//!
//! Run with: `cargo run --example profiling`

use disagg::prelude::*;
use disagg::region::props::PropertySet;
use disagg::region::typed::RegionType;

fn main() {
    let (topo, _) = disagg::presets::single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());

    let mut job = JobBuilder::new("unbalanced");
    let crunch = job.task(
        TaskSpec::new("crunch")
            .work(WorkClass::Scalar, 5_000_000)
            .output_bytes(1 << 16)
            .body(|ctx| {
                ctx.compute(WorkClass::Scalar, 5_000_000);
                ctx.write_output(0, &[1u8; 1 << 16])?;
                Ok(())
            }),
    );
    let thrash = job.task(TaskSpec::new("thrash").body(|ctx| {
        // Random 64 B reads against async-capable memory the optimizer
        // placed by properties: deliberately latency-bound.
        let props = PropertySet::new()
            .with_mode(AccessMode::Async)
            .with_hint(AccessHint::random_reads());
        let r = ctx.alloc(RegionType::GlobalScratch, props, 8 << 20)?;
        let mut buf = [0u8; 64];
        for i in 0..2_000u64 {
            ctx.acc
                .read(r, (i * 7919) % ((8 << 20) - 64), &mut buf, AccessPattern::Random)?;
        }
        Ok(())
    }));
    let overlap = job.task(TaskSpec::new("overlapped").body(|ctx| {
        let props = PropertySet::new().with_mode(AccessMode::Async);
        let r = ctx.alloc(RegionType::GlobalScratch, props, 8 << 20)?;
        let mut buf = vec![0u8; 1 << 20];
        for i in 0..8u64 {
            ctx.async_read(r, i * (1 << 20), &mut buf)?;
            ctx.overlap_compute(WorkClass::Vector, 500_000);
            ctx.wait_async();
        }
        Ok(())
    }));
    job.edge(crunch, thrash);
    job.edge(crunch, overlap);

    let report = rt.execute(job.build().expect("valid")).expect("runs");
    let profile = report.profile();
    println!("{}", profile.render());

    let worst = profile.most_memory_bound().expect("tasks ran");
    println!(
        "tuning target: '{}' spends {:.0}% of its time stalled on memory",
        worst.name,
        worst.memory_fraction() * 100.0
    );
    assert_eq!(worst.name, "thrash");

    let crunchy = profile.tasks.iter().find(|t| t.name == "crunch").unwrap();
    println!(
        "'{}' is {:.0}% pure compute — leave it alone",
        crunchy.name,
        crunchy.compute_fraction() * 100.0
    );
    assert!(crunchy.compute_fraction() > 0.9);
}
