//! # disagg — one front door for the whole stack
//!
//! The implementation lives in eight layer crates (`disagg-hwsim`,
//! `disagg-region`, `disagg-dataflow`, `disagg-sched`, `disagg-ftol`,
//! `disagg-obs`, `disagg-core`, `disagg-workloads`); this crate is the
//! curated facade
//! applications are meant to depend on. Deep `disagg_*::` paths still
//! work but are a private detail of the workspace — new code should
//! reach everything through here:
//!
//! - [`prelude`] — the one import an application or experiment needs;
//! - [`presets`] — ready-made topologies (single server, disaggregated
//!   rack, ...);
//! - top-level re-exports of the runtime types ([`Runtime`],
//!   [`RuntimeConfig`], [`RunReport`], [`DisaggError`]);
//! - layer modules ([`hwsim`], [`region`], [`dataflow`], [`sched`],
//!   [`ftol`], [`obs`], [`serve`], [`workloads`]) for the long tail.
//!
//! ```
//! use disagg::prelude::*;
//!
//! let (topo, _ids) = disagg::presets::single_server();
//! let mut rt = Runtime::new(topo, RuntimeConfig::traced());
//!
//! let mut job = JobBuilder::new("quickstart");
//! let produce = job.task(
//!     TaskSpec::new("produce")
//!         .work(WorkClass::Vector, 10_000)
//!         .output_bytes(4096)
//!         .body(|ctx| {
//!             ctx.write_output(0, &[7u8; 4096])?;
//!             Ok(())
//!         }),
//! );
//! let consume = job.task(TaskSpec::new("consume").body(|ctx| {
//!     let mut buf = [0u8; 4096];
//!     ctx.read_input(0, &mut buf)?;
//!     Ok(())
//! }));
//! job.edge(produce, consume);
//!
//! let report = rt.execute(job.build().unwrap()).unwrap();
//! assert_eq!(report.ownership_transfers, 1, "handover was zero-copy");
//! ```

// The layer crates, one module each, for anything the curated surface
// does not re-export directly.
pub use disagg_dataflow as dataflow;
pub use disagg_ftol as ftol;
pub use disagg_hwsim as hwsim;
pub use disagg_obs as obs;
pub use disagg_region as region;
pub use disagg_sched as sched;
pub use disagg_serve as serve;
pub use disagg_workloads as workloads;

// The runtime's own modules and top-level types.
pub use disagg_core::{config, error, executor, profile, report, runtime};
pub use disagg_core::{
    AdmissionPolicy, DeviceSummary, DisaggError, RunProfile, RunReport, Runtime, RuntimeConfig,
    RuntimeError, Submission, TaskProfile, TaskReport,
};
pub use disagg_serve::{
    ArrivalProcess, ControlPlane, Request, RequestRecord, ServeConfig, ServeLayer, ServeReport,
    Slo, TenantStats, Verdict,
};

/// Ready-made topologies for examples, tests, and experiments.
pub mod presets {
    pub use disagg_hwsim::presets::*;
}

/// Everything an application or experiment typically imports.
///
/// `use disagg::prelude::*;` brings in the runtime types, the job and
/// task builders, property vocabulary, policies, the virtual clock, and
/// the deterministic RNG. [`presets`](crate::presets) is re-exported as
/// a module so topology constructors stay one path segment away.
pub mod prelude {
    pub use crate::presets;
    pub use disagg_core::prelude::*;
    pub use disagg_serve::{
        ArrivalProcess, ControlPlane, Request, RequestRecord, ServeConfig, ServeLayer,
        ServeReport, Slo, TenantStats, Verdict,
    };
    pub use disagg_hwsim::fault::{FaultEvent, FaultInjector, FaultKind};
    pub use disagg_hwsim::rng::SimRng;
    pub use disagg_region::region::OwnerId;
    pub use disagg_sched::schedule::QueuePolicy;
}
