//! Facade re-exports live in `disagg-core`; this root crate hosts examples and integration tests.
pub use disagg_core::*;
