//! Enforcement-path integration tests: the confidential encryption toll,
//! copy_contents plumbing, and audit bookkeeping.

use disagg::prelude::*;
use disagg::hwsim::compute::{ComputeKind, ComputeModel};
use disagg::hwsim::device::{MemDeviceKind, MemDeviceModel};
use disagg::hwsim::topology::{Endpoint, LinkKind, Topology};
use disagg::region::region::OwnerId;

/// A host whose *only* persistent device is NIC-attached far memory — so a
/// persistent output is forced beyond the chassis trust boundary.
fn host_with_only_remote_persistence() -> Topology {
    let mut b = Topology::builder();
    let n = b.node("host");
    let blade = b.node("blade");
    let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
    let dram = b.mem(n, MemDeviceModel::preset(MemDeviceKind::Dram));
    // A persistent far-memory blade (battery-backed) behind the NIC, with
    // synchronous access allowed so an Output region can live there.
    let mut far = MemDeviceModel::preset(MemDeviceKind::FarMemory);
    far.persistent = true;
    far.sync = disagg::hwsim::device::SyncSupport::Either;
    let far = b.mem(blade, far);
    b.link(cpu, dram, LinkKind::MemBus);
    b.link(cpu, Endpoint::Hub(n), LinkKind::PcieCxl);
    b.link(Endpoint::Hub(n), Endpoint::Hub(blade), LinkKind::Nic);
    b.link(Endpoint::Hub(blade), far, LinkKind::MemBus);
    b.build().expect("valid")
}

fn persist_job(confidential: bool, bytes: usize) -> JobSpec {
    let mut j = JobBuilder::new(if confidential { "secret" } else { "plain" });
    j.task(
        TaskSpec::new("persist")
            .confidential(confidential)
            .persistent(true)
            .output_bytes(bytes as u64)
            .body(move |ctx| {
                ctx.write_output(0, &vec![0xAAu8; bytes])?;
                Ok(())
            }),
    );
    j.build().expect("valid job")
}

#[test]
fn confidential_data_beyond_the_trust_boundary_pays_the_crypto_toll() {
    let bytes = 4 << 20;
    let run = |confidential: bool| {
        let mut rt = Runtime::new(
            host_with_only_remote_persistence(),
            RuntimeConfig::traced(),
        );
        let report = rt.execute(persist_job(confidential, bytes)).unwrap();
        let t = &report.tasks[0];
        // The output must be on the NIC-attached device either way.
        let (_, _, dev) = t.placements.iter().find(|(k, _, _)| *k == "output").unwrap();
        assert!(rt.topology().mem(*dev).persistent);
        t.duration()
    };
    let plain = run(false);
    let secret = run(true);
    // 4 MiB of Crypto-class work at 2 ns/B on a CPU ≈ 8.4 ms extra.
    let toll = secret.saturating_sub(plain);
    assert!(
        toll.as_nanos() > 5_000_000,
        "crypto toll {toll} should be milliseconds for 4 MiB"
    );
}

#[test]
fn confidential_data_inside_the_chassis_pays_nothing() {
    let (topo, _) = disagg::presets::single_server();
    let run = |confidential: bool| {
        let mut rt = Runtime::new(topo.clone(), RuntimeConfig::traced());
        let mut j = JobBuilder::new("x");
        j.task(
            TaskSpec::new("t")
                .confidential(confidential)
                .output_bytes(4 << 20)
                .body(|ctx| {
                    ctx.write_output(0, &vec![1u8; 4 << 20])?;
                    Ok(())
                }),
        );
        rt.execute(j.build().unwrap()).unwrap().tasks[0].duration()
    };
    assert_eq!(
        run(true),
        run(false),
        "PCIe/CXL devices are inside the trust boundary: no toll"
    );
}

#[test]
fn copy_contents_round_trips_across_devices() {
    let (topo, ids) = disagg::presets::single_server();
    let mut mgr = disagg::region::RegionManager::new(&topo);
    let a = mgr
        .alloc(
            ids.dram,
            1 << 20,
            RegionType::GlobalScratch,
            PropertySet::new(),
            OwnerId::App,
            SimTime::ZERO,
        )
        .unwrap();
    let b = mgr
        .alloc(
            ids.cxl,
            2 << 20,
            RegionType::GlobalScratch,
            PropertySet::new(),
            OwnerId::App,
            SimTime::ZERO,
        )
        .unwrap();
    let payload: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
    mgr.write(a, OwnerId::App, 0, &payload).unwrap();
    let copied = mgr.copy_contents(a, b).unwrap();
    assert_eq!(copied, 1 << 20);
    let mut buf = vec![0u8; 1 << 20];
    mgr.read(b, OwnerId::App, 0, &mut buf).unwrap();
    assert_eq!(buf, payload);

    // Too-small destination is rejected.
    let tiny = mgr
        .alloc(
            ids.dram,
            64,
            RegionType::GlobalScratch,
            PropertySet::new(),
            OwnerId::App,
            SimTime::ZERO,
        )
        .unwrap();
    assert!(mgr.copy_contents(a, tiny).is_err());
}

#[test]
fn audit_counts_every_placement_in_a_run() {
    let (topo, _) = disagg::presets::single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mut j = JobBuilder::new("audited");
    let a = j.task(
        TaskSpec::new("a")
            .private_scratch(4096)
            .global_scratch(4096)
            .output_bytes(4096)
            .body(|_| Ok(())),
    );
    let b = j.task(TaskSpec::new("b").body(|_| Ok(())));
    j.edge(a, b);
    let spec = j.global_state(4096).build().unwrap();
    let report = rt.execute(spec).unwrap();
    // global state + scratch + gscratch + output = 4 placements audited.
    assert_eq!(report.placements.len(), 4);
    assert!(report.placements_clean());
}

#[test]
fn persistent_outputs_are_replicated_across_failure_domains() {
    // Two persistent failure domains: local PMem and a battery-backed
    // far blade. With persistent_replicas = 2, a persistent result
    // survives losing the primary's node.
    let topo = {
        let mut b = Topology::builder();
        let host = b.node("host");
        let blade = b.node("blade");
        let cpu = b.compute(host, ComputeModel::preset(ComputeKind::Cpu));
        let dram = b.mem(host, MemDeviceModel::preset(MemDeviceKind::Dram));
        let pmem = b.mem(host, MemDeviceModel::preset(MemDeviceKind::Pmem));
        let mut far = MemDeviceModel::preset(MemDeviceKind::FarMemory);
        far.persistent = true;
        far.sync = disagg::hwsim::device::SyncSupport::Either;
        let far = b.mem(blade, far);
        b.link(cpu, dram, LinkKind::MemBus);
        b.link(cpu, pmem, LinkKind::MemBus);
        b.link(cpu, Endpoint::Hub(host), LinkKind::PcieCxl);
        b.link(Endpoint::Hub(host), Endpoint::Hub(blade), LinkKind::Nic);
        b.link(Endpoint::Hub(blade), far, LinkKind::MemBus);
        b.build().expect("valid")
    };
    let mut rt = Runtime::new(
        topo,
        RuntimeConfig::traced().with_persistent_replicas(2),
    );
    let mut j = JobBuilder::new("durable");
    j.task(
        TaskSpec::new("persist")
            .persistent(true)
            .output_bytes(4096)
            .body(|ctx| {
                ctx.write_output(0, b"must survive")?;
                Ok(())
            }),
    );
    let report = rt.execute(j.build().unwrap()).unwrap();
    assert_eq!(report.persistent_replicas.len(), 1);
    let (primary, copies) = &report.persistent_replicas[0];
    assert_eq!(copies.len(), 1, "one extra copy requested");
    // Replica is on a persistent device in a different failure domain.
    let pdev = rt.manager().placement(*primary).unwrap().dev;
    let cdev = rt.manager().placement(copies[0]).unwrap().dev;
    assert!(rt.topology().mem(cdev).persistent);
    assert_ne!(
        rt.topology().node_of_mem(pdev),
        rt.topology().node_of_mem(cdev),
        "replica must live in another failure domain"
    );
    // Contents match.
    let mut a = [0u8; 12];
    let mut b = [0u8; 12];
    rt.manager().read(*primary, OwnerId::App, 0, &mut a).unwrap();
    rt.manager().read(copies[0], OwnerId::App, 0, &mut b).unwrap();
    assert_eq!(&a, b"must survive");
    assert_eq!(a, b);
}

#[test]
fn replication_degrades_gracefully_when_no_second_domain_exists() {
    // A single-node host has one failure domain: the runtime keeps the
    // primary and reports zero copies instead of failing.
    use disagg::hwsim::compute::{ComputeKind, ComputeModel};
    use disagg::hwsim::device::{MemDeviceKind, MemDeviceModel};
    let mut b = Topology::builder();
    let n = b.node("host");
    let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
    let dram = b.mem(n, MemDeviceModel::preset(MemDeviceKind::Dram));
    let pmem = b.mem(n, MemDeviceModel::preset(MemDeviceKind::Pmem));
    b.link(cpu, dram, LinkKind::MemBus);
    b.link(cpu, pmem, LinkKind::MemBus);
    let topo = b.build().unwrap();

    let mut rt = Runtime::new(topo, RuntimeConfig::traced().with_persistent_replicas(3));
    let mut j = JobBuilder::new("lonely");
    j.task(
        TaskSpec::new("persist")
            .persistent(true)
            .output_bytes(1024)
            .body(|ctx| {
                ctx.write_output(0, &[1u8; 64])?;
                Ok(())
            }),
    );
    let report = rt.execute(j.build().unwrap()).unwrap();
    let (_, copies) = &report.persistent_replicas[0];
    assert!(copies.is_empty(), "no second failure domain exists");
}
