//! End-to-end observability round-trips: real runs through the public
//! facade, exported as Chrome traces / folded stacks / critical paths,
//! and validated structurally. Pins the acceptance criteria for the
//! observability PR: traces parse and nest within the makespan, the
//! diamond's critical path is the known longest chain, and metrics
//! snapshots agree with the run report.

use std::sync::{Arc, Mutex};

use disagg::obs::{chrome_trace, folded_stacks, validate_chrome_trace};
use disagg::prelude::*;

/// Quickstart producer/consumer on the single-server preset, run with a
/// streaming [`FullObserver`] attached.
fn observed_quickstart() -> (Runtime, RunReport, Arc<Mutex<FullObserver>>) {
    let (topo, _ids) = presets::single_server();
    let sink = Arc::new(Mutex::new(FullObserver::new()));
    let mut rt = Runtime::new(
        topo,
        RuntimeConfig::default().with_observer(ObserverSlot::shared(sink.clone())),
    );
    let mut job = JobBuilder::new("quickstart");
    let produce = job.task(
        TaskSpec::new("produce")
            .work(WorkClass::Vector, 100_000)
            .output_bytes(1 << 20)
            .body(|ctx| {
                let chunk = [7u8; 4096];
                for i in 0..256 {
                    ctx.write_output(i * 4096, &chunk)?;
                }
                Ok(())
            }),
    );
    let consume = job.task(
        TaskSpec::new("consume")
            .work(WorkClass::Scalar, 100_000)
            .body(|ctx| {
                let mut buf = vec![0u8; 1 << 20];
                ctx.read_input(0, &mut buf)?;
                Ok(())
            }),
    );
    job.edge(produce, consume);
    let report = rt.execute(job.build().unwrap()).unwrap();
    (rt, report, sink)
}

#[test]
fn chrome_trace_round_trips_and_nests_within_makespan() {
    let (rt, report, sink) = observed_quickstart();
    let obs = sink.lock().unwrap();
    let doc = chrome_trace(&obs.events, rt.topology());
    let stats = validate_chrome_trace(&doc).expect("emitted trace must parse");

    let lanes = rt.topology().compute_devices().len() + rt.topology().mem_devices().len();
    assert_eq!(stats.lanes, lanes, "one lane per compute/memory device");
    assert_eq!(
        stats.task_spans,
        report.tasks.len(),
        "one complete span per executed task"
    );
    assert!(stats.mem_spans > 0, "the 1 MiB handover shows up on a memory lane");
    assert!(
        stats.last_ns <= report.makespan.as_nanos(),
        "spans nest within the makespan: {} > {}",
        stats.last_ns,
        report.makespan.as_nanos()
    );

    // Deterministic export: same events, same bytes.
    assert_eq!(doc, chrome_trace(&obs.events, rt.topology()));
}

#[test]
fn diamond_critical_path_is_the_heavy_chain() {
    // A diamond where the right branch does 4x the work of the left:
    // the longest chain is source -> right -> sink, by construction.
    let (topo, _ids) = presets::single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::default());
    let mut job = JobBuilder::new("diamond");
    let mk = |name: &str, work: u64| {
        TaskSpec::new(name)
            .work(WorkClass::Scalar, work)
            .output_bytes(4096)
            .body(move |ctx| {
                ctx.compute(WorkClass::Scalar, work);
                ctx.write_output(0, &[1u8; 4096])?;
                Ok(())
            })
    };
    let source = job.task(mk("source", 100_000));
    let left = job.task(mk("left", 100_000));
    let right = job.task(mk("right", 400_000));
    let sink = job.task(mk("sink", 100_000));
    job.edge(source, left);
    job.edge(source, right);
    job.edge(left, sink);
    job.edge(right, sink);
    let report = rt.execute(job.build().unwrap()).unwrap();

    let (spans, paths) = report.critical_paths(2);
    assert!(!paths.is_empty(), "a path exists");
    let names: Vec<&str> = paths[0].spans.iter().map(|&i| spans[i].name.as_str()).collect();
    assert_eq!(names, ["source", "right", "sink"], "heavy chain wins");
    assert!(
        paths[0].total.as_nanos() <= report.makespan.as_nanos(),
        "critical path fits inside the makespan"
    );

    let folded = folded_stacks(&spans);
    assert!(folded.contains(";right;"), "flamegraph carries the heavy task");
}

#[test]
fn metrics_snapshot_agrees_with_the_run_report() {
    let (_rt, report, sink) = observed_quickstart();
    let snap = report.metrics.clone().expect("observer populates RunReport::metrics");

    let tasks = report.tasks.len() as u64;
    assert_eq!(snap.counter("events.task_start"), tasks);
    assert_eq!(snap.counter("events.task_finish"), tasks);
    assert_eq!(snap.counter("events.transfer"), report.ownership_transfers);
    assert!(snap.counter("bytes.moved") > 0, "data movement was metered");
    assert!(
        snap.histogram("queue_wait_ns").is_some(),
        "queue-wait histogram is registered"
    );

    // The registry inside the observer and the snapshot on the report
    // are the same measurement.
    let live = sink.lock().unwrap().registry.snapshot();
    assert_eq!(live.to_json(), snap.to_json());

    // Virtual-time determinism: a second identical run snapshots
    // byte-identically.
    let (_rt2, report2, _sink2) = observed_quickstart();
    assert_eq!(report2.metrics.unwrap().to_json(), snap.to_json());
}
