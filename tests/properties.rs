//! Randomized property tests over the core invariants.
//!
//! Inputs are generated with the in-repo deterministic [`SimRng`]
//! (seeded per case, so failures reproduce exactly) instead of an
//! external property-testing framework — the workspace must build and
//! test fully offline. Each property runs a quick number of cases by
//! default; build with `--features heavy-tests` for the deep sweep.

use disagg::ftol::reedsolomon::ReedSolomon;
use disagg::hwsim::compute::{ComputeKind, ComputeModel};
use disagg::hwsim::device::{MemDeviceKind, MemDeviceModel};
use disagg::presets::single_server;
use disagg::hwsim::rng::SimRng;
use disagg::hwsim::time::SimTime;
use disagg::hwsim::topology::{LinkKind, Topology};
use disagg::region::pool::MemoryPool;
use disagg::region::props::{AccessMode, PropertySet};
use disagg::region::region::{OwnerId, RegionManager};
use disagg::region::typed::RegionType;
use disagg::sched::placement::{PlacementEngine, PlacementPolicy};

/// Base seed for every property; change to shake out new cases.
const MASTER_SEED: u64 = 0xD15A_66ED;

/// Number of cases to run: the quick default keeps `cargo test -q`
/// snappy; `--features heavy-tests` restores proptest-scale sweeps.
fn cases(quick: u64, heavy: u64) -> u64 {
    if cfg!(feature = "heavy-tests") {
        heavy
    } else {
        quick
    }
}

/// Runs `body` once per case with a per-case rng; panics carry the
/// case seed so any failure is replayable.
fn for_cases(name: &str, quick: u64, heavy: u64, mut body: impl FnMut(&mut SimRng)) {
    let mut master = SimRng::new(MASTER_SEED);
    for case in 0..cases(quick, heavy) {
        let mut rng = master.fork(case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property {name} failed at case {case} (master seed {MASTER_SEED:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

fn random_bytes(rng: &mut SimRng, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn small_pool(cap: u64) -> (MemoryPool, disagg::hwsim::ids::MemDeviceId) {
    let mut b = Topology::builder();
    let n = b.node("host");
    let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
    let dram = b.mem(n, MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, cap));
    b.link(cpu, dram, LinkKind::MemBus);
    let topo = b.build().unwrap();
    (MemoryPool::new(&topo), dram)
}

/// The allocator never double-allocates, never exceeds capacity, and
/// freeing everything restores the full arena.
#[test]
fn allocator_conserves_capacity() {
    for_cases("allocator_conserves_capacity", 16, 64, |rng| {
        let n_ops = rng.range(1, 60) as usize;
        let cap = 1 << 20;
        let (mut pool, dev) = small_pool(cap);
        let mut live: Vec<(disagg::region::RegionId, u64, u64)> = Vec::new();
        for _ in 0..n_ops {
            let size = rng.range(1, 4096);
            let free_one = rng.chance(0.5);
            if free_one && !live.is_empty() {
                let (id, _, _) = live.swap_remove(0);
                pool.free(id).unwrap();
            } else if let Ok(id) = pool.alloc(dev, size) {
                let p = pool.placement(id).unwrap();
                // No overlap with any live allocation.
                for &(_, off, len) in &live {
                    assert!(
                        p.offset + p.size <= off || off + len <= p.offset,
                        "overlap: [{}, {}) vs [{}, {})",
                        p.offset,
                        p.offset + p.size,
                        off,
                        off + len
                    );
                }
                live.push((id, p.offset, p.size));
            }
            let total: u64 = live.iter().map(|&(_, _, l)| l).sum();
            assert_eq!(pool.allocated(dev), total);
            assert!(total <= cap);
        }
        for (id, _, _) in live {
            pool.free(id).unwrap();
        }
        assert_eq!(pool.allocated(dev), 0);
        assert_eq!(pool.fragmentation(dev), 0.0);
    });
}

/// Reed-Solomon reconstructs any erasure set of size ≤ m, for random
/// data, shard geometry, and erased positions.
#[test]
fn reed_solomon_recovers_any_m_erasures() {
    for_cases("reed_solomon_recovers_any_m_erasures", 16, 64, |rng| {
        let k = rng.range(2, 8) as usize;
        let m = rng.range(1, 4) as usize;
        let len = rng.range(1, 200) as usize;
        let rs = ReedSolomon::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k).map(|_| random_bytes(rng, len)).collect();
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();

        // Erase m distinct random positions.
        let mut positions: Vec<usize> = (0..k + m).collect();
        rng.shuffle(&mut positions);
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for &p in positions.iter().take(m) {
            shards[p] = None;
        }
        rs.reconstruct(&mut shards).unwrap();
        for i in 0..k + m {
            assert_eq!(shards[i].as_ref().unwrap(), &full[i], "shard {}", i);
        }
    });
}

/// Ownership transfer chains preserve contents exactly, and only the
/// final owner can read.
#[test]
fn transfer_chains_preserve_contents() {
    for_cases("transfer_chains_preserve_contents", 16, 64, |rng| {
        let hops = rng.range(1, 8);
        let payload_len = rng.range(1, 256) as usize;
        let payload = random_bytes(rng, payload_len);
        let (topo, ids) = single_server();
        let mut mgr = RegionManager::new(&topo);
        let first = OwnerId::Task { job: 0, task: 0 };
        let r = mgr
            .alloc(
                ids.dram,
                payload.len() as u64,
                RegionType::Output,
                PropertySet::new(),
                first,
                SimTime::ZERO,
            )
            .unwrap();
        mgr.write(r, first, 0, &payload).unwrap();
        let mut owner = first;
        for h in 1..=hops {
            let next = OwnerId::Task { job: 0, task: h };
            mgr.transfer(r, owner, next).unwrap();
            owner = next;
        }
        let mut buf = vec![0u8; payload.len()];
        mgr.read(r, owner, 0, &mut buf).unwrap();
        assert_eq!(buf, payload);
        let mut buf2 = vec![0u8; 1];
        assert!(mgr.read(r, first, 0, &mut buf2).is_err());
    });
}

/// The placement engine never violates hard properties, whatever the
/// requested combination.
#[test]
fn placement_respects_hard_properties() {
    for_cases("placement_respects_hard_properties", 16, 64, |rng| {
        let persistent = rng.chance(0.5);
        let coherent = rng.chance(0.5);
        let asynchronous = rng.chance(0.5);
        let size = rng.range(1, 1 << 30);
        let (topo, ids) = single_server();
        let pool = MemoryPool::new(&topo);
        let mut engine = PlacementEngine::new(PlacementPolicy::Declarative);
        let props = PropertySet::new()
            .persistent(persistent)
            .coherent(coherent)
            .with_mode(if asynchronous { AccessMode::Async } else { AccessMode::Sync });
        if let Some(dev) = engine.choose(&topo, &pool, ids.cpu, &props, size) {
            let model = topo.mem(dev);
            assert!(!persistent || model.persistent);
            assert!(!coherent || model.coherent);
            assert!(asynchronous || model.sync.allows_sync());
            let free = pool.capacity(dev) - pool.allocated(dev);
            assert!(free >= size);
        }
    });
}

/// Random DAGs always schedule with precedence respected.
#[test]
fn random_dags_schedule_with_precedence() {
    for_cases("random_dags_schedule_with_precedence", 16, 64, |rng| {
        use disagg::prelude::{JobId, WorkClass};
        use disagg::dataflow::{JobBuilder, TaskSpec};
        use disagg::sched::schedule::{SchedPolicy, Scheduler};

        let n = rng.range(2, 20) as usize;
        let density = rng.next_f64() * 0.9;
        let mut job = JobBuilder::new("random");
        let ids: Vec<_> = (0..n)
            .map(|i| {
                job.task(
                    TaskSpec::new(format!("t{i}"))
                        .work(WorkClass::Scalar, 1 + rng.next_below(1_000_000))
                        .output_bytes(rng.next_below(1 << 20)),
                )
            })
            .collect();
        // Forward edges only → guaranteed acyclic.
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.next_f64() < density {
                    job.edge(ids[i], ids[j]);
                }
            }
        }
        let spec = job.build().unwrap();
        let (topo, _) = single_server();
        let sched = Scheduler::new(SchedPolicy::Heft)
            .plan(&topo, &[(JobId(0), &spec)])
            .unwrap();
        for &id in &ids {
            for &s in spec.dag.successors(id) {
                let a = sched.entry(JobId(0), id).unwrap();
                let b = sched.entry(JobId(0), s).unwrap();
                assert!(
                    a.est_finish <= b.est_start,
                    "task {} must finish before {} starts",
                    id,
                    s
                );
            }
        }
    });
}

/// Topology access costs are monotone in size and never negative.
#[test]
fn access_costs_are_monotone_in_size() {
    for_cases("access_costs_are_monotone_in_size", 16, 64, |rng| {
        use disagg::hwsim::device::{AccessOp, AccessPattern};
        let small = rng.range(1, 1 << 16);
        let factor = rng.range(2, 16);
        let (topo, h) = single_server();
        for dev in [h.dram, h.cxl, h.far, h.ssd] {
            let a = topo
                .access_cost(h.cpu, dev, small, AccessOp::Read, AccessPattern::Sequential)
                .unwrap();
            let b = topo
                .access_cost(
                    h.cpu,
                    dev,
                    small * factor,
                    AccessOp::Read,
                    AccessPattern::Sequential,
                )
                .unwrap();
            assert!(b >= a, "{dev:?}: {b:?} < {a:?} for larger size");
        }
    });
}

/// The contention ledger is monotone: a reservation never finishes
/// before it starts.
#[test]
fn ledger_is_monotone() {
    for_cases("ledger_is_monotone", 16, 64, |rng| {
        use disagg::hwsim::contention::{BandwidthLedger, ResourceKey};
        use disagg::hwsim::ids::MemDeviceId;
        let n = rng.range(1, 40) as usize;
        let mut reservations: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.next_below(100_000), rng.range(1, 100_000)))
            .collect();
        reservations.sort();
        let mut ledger = BandwidthLedger::new(1_000);
        let key = ResourceKey::Mem(MemDeviceId(0));
        for (start, bytes) in reservations {
            let fin = ledger.reserve(key, SimTime(start), bytes as f64, 10.0);
            assert!(fin >= SimTime(start));
        }
    });
}

/// Region reads after writes round-trip at any offset (dense and
/// sparse backings).
#[test]
fn region_rw_round_trips() {
    for_cases("region_rw_round_trips", 8, 64, |rng| {
        let region_mib = rng.range(1, 129);
        let offset_frac = rng.next_f64() * 0.95;
        let payload_len = rng.range(1, 512) as usize;
        let payload = random_bytes(rng, payload_len);
        let (topo, ids) = single_server();
        let mut mgr = RegionManager::new(&topo);
        let size = region_mib << 20; // Crosses the 64 MiB dense/sparse divide.
        let r = mgr
            .alloc(
                ids.cxl,
                size,
                RegionType::GlobalScratch,
                PropertySet::new(),
                OwnerId::App,
                SimTime::ZERO,
            )
            .unwrap();
        let offset = ((size - payload.len() as u64) as f64 * offset_frac) as u64;
        mgr.write(r, OwnerId::App, offset, &payload).unwrap();
        let mut buf = vec![0u8; payload.len()];
        mgr.read(r, OwnerId::App, offset, &mut buf).unwrap();
        assert_eq!(buf, payload);
    });
}

/// The striped heap conserves live objects through arbitrary
/// put/delete/compact sequences, and compaction always zeroes the
/// dead count.
#[test]
fn striped_heap_conserves_live_objects() {
    for_cases("striped_heap_conserves_live_objects", 12, 32, |rng| {
        use disagg::ftol::heap::StripedHeap;
        use disagg::hwsim::contention::BandwidthLedger;
        use disagg::hwsim::fault::FaultInjector;
        use disagg::presets::disaggregated_rack;

        let n_ops = rng.range(1, 40) as usize;
        let (topo, rack) = disaggregated_rack(2, 32, 4, 64);
        let mut mgr = RegionManager::new(&topo);
        let mut ledger = BandwidthLedger::default_buckets();
        let mut heap = StripedHeap::create(
            &mut mgr,
            &topo,
            &rack.pool[..4],
            16_000,
            3,
            1,
            OwnerId::App,
            SimTime::ZERO,
        )
        .unwrap();
        let calm = FaultInjector::none();
        let mut model: std::collections::BTreeMap<disagg::ftol::heap::ObjId, Vec<u8>> =
            Default::default();

        for _ in 0..n_ops {
            let op = rng.next_below(10) as u8;
            let size = rng.range(1, 400) as usize;
            match op {
                0..=5 => {
                    // Put (compact first if the tail is exhausted).
                    let data = random_bytes(rng, size);
                    if heap.free_tail() < size as u64 {
                        heap.compact(&mut mgr, &topo, &mut ledger, SimTime(1)).unwrap();
                    }
                    if heap.free_tail() >= size as u64 {
                        let (id, _) = heap
                            .put(&mut mgr, &topo, &mut ledger, &data, SimTime(1))
                            .unwrap();
                        model.insert(id, data);
                    }
                }
                6..=8 => {
                    // Delete a random live object.
                    if let Some(&id) = model.keys().next() {
                        heap.delete(id).unwrap();
                        model.remove(&id);
                    }
                }
                _ => {
                    heap.compact(&mut mgr, &topo, &mut ledger, SimTime(1)).unwrap();
                    assert_eq!(heap.dead_bytes(), 0);
                }
            }
            assert_eq!(heap.len(), model.len());
            assert_eq!(
                heap.live_bytes(),
                model.values().map(|d| d.len() as u64).sum::<u64>()
            );
        }
        // Every surviving object reads back exactly.
        for (&id, data) in &model {
            let (got, _, _) = heap
                .get(&mgr, &topo, &mut ledger, &calm, id, SimTime(2))
                .unwrap();
            assert_eq!(&got, data);
        }
    });
}

/// Tiering plans never violate declared properties, whatever the
/// hotness distribution: a persistent region never lands on volatile
/// memory, a sync region never on async-only storage.
#[test]
fn tiering_never_violates_properties() {
    for_cases("tiering_never_violates_properties", 12, 32, |rng| {
        use disagg::region::hotness::HotnessTracker;
        use disagg::region::migrate::TieringPolicy;

        let n_regions = rng.range(4, 20) as usize;
        let (topo, ids) = single_server();
        let mut mgr = RegionManager::new(&topo);
        let mut tracker = HotnessTracker::new();
        let homes = [ids.dram, ids.pmem, ids.cxl, ids.far, ids.ssd];
        for i in 0..n_regions {
            let heat = rng.next_below(60) as u32;
            // Mix persistent and volatile, sync and async regions.
            let persistent = i % 3 == 0;
            let asynchronous = i % 2 == 0;
            let props = PropertySet::new()
                .persistent(persistent)
                .with_mode(if asynchronous { AccessMode::Async } else { AccessMode::Sync });
            let home = if persistent {
                if asynchronous { ids.ssd } else { ids.pmem }
            } else {
                homes[rng.next_below(3) as usize]
            };
            let r = mgr
                .alloc(home, 4096, RegionType::GlobalScratch, props, OwnerId::App, SimTime::ZERO)
                .unwrap();
            for _ in 0..heat {
                tracker.record(r, 64, SimTime(1));
            }
        }
        let policy = TieringPolicy::by_latency(&topo);
        for (id, target) in policy.plan(&mgr, &topo, &tracker) {
            let meta = mgr.meta(id).unwrap();
            let dev = topo.mem(target);
            assert!(
                !meta.props.persistent || dev.persistent,
                "persistent region planned onto volatile {target:?}"
            );
            assert!(
                meta.props.mode != AccessMode::Sync || dev.sync.allows_sync(),
                "sync region planned onto async-only {target:?}"
            );
        }
    });
}

/// Admission control always runs every job exactly once, whatever
/// the demand mix and watermark.
#[test]
fn admission_runs_every_job_once() {
    for_cases("admission_runs_every_job_once", 12, 32, |rng| {
        use disagg::prelude::*;
        let n_jobs = rng.range(1, 8) as usize;
        let watermark = 0.3 + rng.next_f64() * 0.7;
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced().with_admission(watermark));
        let jobs: Vec<JobSpec> = (0..n_jobs)
            .map(|i| {
                let d = rng.range(1, 3 << 30);
                let mut j = JobBuilder::new(format!("j{i}"));
                j.task(TaskSpec::new("t").private_scratch(d).body(|ctx| {
                    ctx.scratch_write(0, &[1u8; 16])?;
                    Ok(())
                }));
                j.build().unwrap()
            })
            .collect();
        let report = rt.execute(jobs).unwrap();
        assert_eq!(report.tasks.len(), n_jobs);
        assert_eq!(rt.manager().live_count(), 0);
    });
}

/// The executor never panics on random jobs: it either runs them or
/// returns a structured error; afterwards only persistent outputs may
/// survive in the pool.
#[test]
fn executor_is_total_over_random_jobs() {
    for_cases("executor_is_total_over_random_jobs", 12, 24, |rng| {
        use disagg::prelude::*;
        use disagg::hwsim::compute::{ComputeKind, WorkClass};

        let n_tasks = rng.range(1, 8) as usize;
        let density = rng.next_f64() * 0.8;
        let (topo, _) = single_server();
        let mut rt = Runtime::new(topo, RuntimeConfig::traced());

        let mut job = JobBuilder::new("fuzz");
        let mut ids = Vec::new();
        let mut persistent_sinks = 0usize;
        for i in 0..n_tasks {
            let mut spec = TaskSpec::new(format!("t{i}"))
                .work(WorkClass::Scalar, rng.next_below(1_000_000))
                .body(|ctx| {
                    if ctx.regions.output.is_some() {
                        ctx.write_output(0, &[1u8; 16])?;
                    }
                    if ctx.regions.private_scratch.is_some() {
                        ctx.scratch_write(0, &[2u8; 8])?;
                    }
                    Ok(())
                });
            if rng.chance(0.5) {
                spec = spec.private_scratch(64 + rng.next_below(1 << 20));
            }
            if rng.chance(0.7) {
                spec = spec.output_bytes(64 + rng.next_below(1 << 20));
            }
            if rng.chance(0.3) {
                spec = spec.confidential(true);
            }
            let persistent = rng.chance(0.3);
            if persistent {
                spec = spec.persistent(true);
            }
            if rng.chance(0.3) {
                spec = spec.on(if rng.chance(0.5) { ComputeKind::Gpu } else { ComputeKind::Cpu });
            }
            ids.push((job.task(spec), persistent));
        }
        let mut has_successor = vec![false; n_tasks];
        for i in 0..n_tasks {
            for j in (i + 1)..n_tasks {
                if rng.next_f64() < density {
                    job.edge(ids[i].0, ids[j].0);
                    has_successor[i] = true;
                }
            }
        }
        // Persistent outputs that reach a successor are consumed, not
        // retained; only terminal persistent outputs survive.
        for (i, &(_, p)) in ids.iter().enumerate() {
            if p && !has_successor[i] {
                persistent_sinks += 1;
            }
        }

        let spec = job.build().unwrap();
        match rt.execute(spec) {
            Ok(report) => {
                assert_eq!(report.tasks.len(), n_tasks);
                // Persistent sinks with outputs survive; nothing else.
                assert!(rt.manager().live_count() <= persistent_sinks);
            }
            Err(e) => {
                // Structured failure is acceptable (e.g. a task with a
                // persistent+odd property mix); a panic is not.
                let _ = e.to_string();
            }
        }
    });
}

/// Shortest-path resolution over random topologies is symmetric
/// (undirected links) and obeys the triangle inequality on latency.
#[test]
fn topology_paths_are_symmetric_and_triangular() {
    for_cases("topology_paths_are_symmetric_and_triangular", 16, 48, |rng| {
        use disagg::hwsim::compute::{ComputeKind, ComputeModel};
        use disagg::hwsim::device::{MemDeviceKind, MemDeviceModel};
        use disagg::hwsim::topology::{LinkKind, Topology};

        let n_mem = rng.range(2, 7) as usize;
        let extra_links = rng.next_below(8) as usize;
        let mut b = Topology::builder();
        let node = b.node("host");
        let cpu = b.compute(node, ComputeModel::preset(ComputeKind::Cpu));
        let kinds = [
            MemDeviceKind::Dram,
            MemDeviceKind::CxlDram,
            MemDeviceKind::Pmem,
            MemDeviceKind::Hbm,
        ];
        let mems: Vec<_> = (0..n_mem)
            .map(|i| b.mem(node, MemDeviceModel::preset(kinds[i % kinds.len()])))
            .collect();
        // A spanning chain guarantees connectivity; extra random links
        // create alternative routes.
        b.link(cpu, mems[0], LinkKind::MemBus);
        for w in mems.windows(2) {
            b.link(w[0], w[1], LinkKind::PcieCxl);
        }
        for _ in 0..extra_links {
            let a = mems[rng.next_below(n_mem as u64) as usize];
            let c = mems[rng.next_below(n_mem as u64) as usize];
            if a != c {
                b.link_custom(
                    a,
                    c,
                    LinkKind::Numa,
                    10.0 + rng.next_f64() * 500.0,
                    1.0 + rng.next_f64() * 100.0,
                );
            }
        }
        let topo = b.build().unwrap();

        for &a in &mems {
            for &c in &mems {
                let ab = topo.mem_path(a, c).expect("connected");
                let ba = topo.mem_path(c, a).expect("connected");
                assert!(
                    (ab.latency_ns - ba.latency_ns).abs() < 1e-9,
                    "asymmetric latency {a:?}→{c:?}: {} vs {}",
                    ab.latency_ns,
                    ba.latency_ns
                );
                for &via in &mems {
                    let av = topo.mem_path(a, via).expect("connected");
                    let vc = topo.mem_path(via, c).expect("connected");
                    assert!(
                        ab.latency_ns <= av.latency_ns + vc.latency_ns + 1e-9,
                        "triangle violated: {a:?}→{c:?} {} > via {via:?} {}",
                        ab.latency_ns,
                        av.latency_ns + vc.latency_ns
                    );
                }
            }
        }
    });
}
