//! Failure-recovery scenarios, end to end: silent-corruption detection
//! and online reconstruction on the access path, replica failover,
//! erasure-coded decode after a device loss, retry-budget exhaustion
//! surfacing a clean typed error, and bit-for-bit determinism of a
//! faulty run.

use disagg::ftol::replicate::ReplicatedRegion;
use disagg::ftol::stripe::StripedRegion;
use disagg::hwsim::contention::BandwidthLedger;
use disagg::hwsim::trace::{Trace, TraceEvent};
use disagg::prelude::*;
use disagg::presets::{disaggregated_rack, single_server};
use disagg::region::access::Accessor;
use disagg::region::region::RegionManager;
use disagg::workloads::dbms;

const WHO: OwnerId = OwnerId::App;

/// A corrupt range under a read is detected, reconstructed online, and
/// the caller still sees the original bytes — at a latency premium.
#[test]
fn corrupt_range_is_detected_and_reconstructed_on_read() {
    let (topo, ids) = single_server();
    let mut mgr = RegionManager::new(&topo);
    let mut ledger = BandwidthLedger::default_buckets();
    let mut trace = Trace::enabled();
    let r = mgr
        .alloc(ids.dram, 4096, RegionType::Output, PropertySet::new(), WHO, SimTime::ZERO)
        .unwrap();
    let placement = mgr.placement(r).unwrap();

    let mut acc =
        Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime::ZERO);
    acc.write(r, 0, &[7u8; 4096], AccessPattern::Sequential).unwrap();
    let mut buf = [0u8; 4096];
    let healthy = acc.read(r, 0, &mut buf, AccessPattern::Sequential).unwrap();
    assert_eq!(acc.stats.bytes_reconstructed, 0, "clean read reconstructs nothing");

    // Flip bits under the region, device-absolute, mid-window.
    let faults = FaultInjector::with_events(vec![FaultEvent {
        at: SimTime(1),
        kind: FaultKind::Corrupt { dev: placement.dev, offset: placement.offset + 512, len: 1024 },
    }]);
    let mut acc = Accessor::new(&topo, &mut ledger, &mut mgr, &mut trace, ids.cpu, WHO, SimTime(10))
        .with_faults(&faults);
    let mut buf = [0u8; 4096];
    let repaired = acc.read(r, 0, &mut buf, AccessPattern::Sequential).unwrap();
    assert_eq!(buf, [7u8; 4096], "reconstruction must restore the original bytes");
    assert_eq!(acc.stats.bytes_reconstructed, 1024);
    assert!(
        repaired > healthy,
        "reconstructed read ({repaired}) must cost more than a clean one ({healthy})"
    );
    assert!(
        trace.events().iter().any(|e| matches!(e, TraceEvent::Reconstruct { bytes: 1024, .. })),
        "the repair must be visible in the trace"
    );
}

/// Losing the nearest replica's node fails reads over to a survivor.
#[test]
fn replica_failover_survives_a_node_crash() {
    let (topo, rack) = disaggregated_rack(2, 32, 4, 64);
    let mut mgr = RegionManager::new(&topo);
    let mut ledger = BandwidthLedger::default_buckets();
    let size: u64 = 1 << 20;
    let mut rr =
        ReplicatedRegion::create(&mut mgr, &topo, &rack.pool[..2], size, WHO, SimTime::ZERO)
            .unwrap();
    let none = FaultInjector::none();
    let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    rr.write(&mut mgr, &topo, &mut ledger, &none, 0, &data, SimTime::ZERO).unwrap();

    let faults = FaultInjector::with_events(vec![FaultEvent {
        at: SimTime(2),
        kind: FaultKind::NodeCrash(topo.node_of_mem(rr.devs[0])),
    }]);
    let mut buf = vec![0u8; size as usize];
    rr.read(&mgr, &topo, &mut ledger, &faults, rack.cpus[0], 0, &mut buf, SimTime(10))
        .expect("surviving replica serves the read");
    assert_eq!(buf, data, "failover read returns the written bytes");
}

/// An RS(4+2) stripe decodes through a device failure: degraded, but
/// bit-exact.
#[test]
fn erasure_coded_stripe_decodes_after_device_failure() {
    let (topo, rack) = disaggregated_rack(2, 32, 6, 64);
    let mut mgr = RegionManager::new(&topo);
    let mut ledger = BandwidthLedger::default_buckets();
    let size: u64 = 1 << 20;
    let (k, m) = (4usize, 2usize);
    let mut sr =
        StripedRegion::create(&mut mgr, &topo, &rack.pool[..k + m], size, k, m, WHO, SimTime::ZERO)
            .unwrap();
    let data: Vec<u8> = (0..size).map(|i| (i * 7 % 253) as u8).collect();
    sr.write(&mut mgr, &topo, &mut ledger, 0, &data, SimTime::ZERO).unwrap();

    let faults = FaultInjector::with_events(vec![FaultEvent {
        at: SimTime(2),
        kind: FaultKind::DeviceFail(sr.devs[1]),
    }]);
    let mut buf = vec![0u8; size as usize];
    let (_, degraded) = sr
        .read(&mgr, &topo, &mut ledger, &faults, 0, &mut buf, SimTime(10))
        .expect("k surviving spans suffice");
    assert!(degraded, "a lost span must force the decode path");
    assert_eq!(buf, data, "decode restores the original bytes");
}

/// A long single task on a two-server rack, used by the retry tests.
fn long_job() -> JobSpec {
    let mut job = JobBuilder::new("long");
    job.task(TaskSpec::new("grind").work(WorkClass::Scalar, 50_000_000).output_bytes(4096));
    job.build().unwrap()
}

/// When every node goes down mid-task and the budget is zero, the run
/// fails with the typed `RetriesExhausted` — not a panic, not a hang.
#[test]
fn exhausted_retry_budget_surfaces_a_clean_error() {
    // Probe the healthy makespan to aim the crash mid-task.
    let (topo, _) = disaggregated_rack(2, 16, 2, 64);
    let mut rt = Runtime::new(topo, RuntimeConfig::default());
    let t = rt.execute(vec![long_job()]).unwrap().makespan;

    let (topo, rack) = disaggregated_rack(2, 16, 2, 64);
    let mut faults = FaultInjector::none();
    for &n in &rack.nodes {
        faults.schedule(SimTime(t.0 / 2), FaultKind::NodeCrash(n));
    }
    let config = RuntimeConfig::default()
        .with_faults(faults)
        .with_recovery(RecoveryPolicy::default().with_max_retries(0));
    let mut rt = Runtime::new(topo, config);
    match rt.execute(vec![long_job()]) {
        Err(DisaggError::RetriesExhausted { attempts, .. }) => {
            assert_eq!(attempts, 1, "budget 0 means one interrupted attempt");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

/// The same faulty submission — crash, recovery, corruption, degraded
/// link, retries — replays bit-for-bit.
#[test]
fn faulty_run_is_bit_for_bit_deterministic() {
    let run = || {
        let (topo, rack) = disaggregated_rack(2, 16, 2, 64);
        let mut faults = FaultInjector::none();
        faults.schedule(SimTime(20_000), FaultKind::NodeCrash(rack.nodes[0]));
        faults.schedule(SimTime(60_000), FaultKind::NodeRecover(rack.nodes[0]));
        faults.schedule(
            SimTime(10_000),
            FaultKind::Corrupt { dev: rack.drams[0], offset: 0, len: 1 << 20 },
        );
        let config = RuntimeConfig::traced()
            .with_faults(faults)
            .with_recovery(
                RecoveryPolicy::default()
                    .with_detection_delay(SimDuration(2_000))
                    .with_backoff(SimDuration(1_000)),
            );
        let mut rt = Runtime::new(topo, config);
        let job = dbms::query_job(dbms::DbmsConfig {
            tuples: 2_000,
            probe_tuples: 1_000,
            ..dbms::DbmsConfig::default()
        });
        let report = rt.execute(vec![job]).unwrap();
        let trace: Vec<String> = rt.trace().events().iter().map(|e| format!("{e:?}")).collect();
        (report.makespan, trace)
    };
    let (m1, t1) = run();
    let (m2, t2) = run();
    assert_eq!(m1, m2, "faulty makespan must replay exactly");
    assert_eq!(t1, t2, "faulty trace must replay bit-for-bit");
}
