//! Executor equivalence goldens.
//!
//! Earlier refactors replaced the executor's per-task hash maps with
//! dense arenas, the contention ledger's per-quantum maps with ring
//! buffers, the memory pool's region maps with an id-indexed slab, and
//! the schedule's `(job, task)` map with an indexed slice; this PR
//! shards the event loop itself into per-shard heaps synchronized by
//! conservative virtual-time windows. None of that may change
//! observable behavior: the digests below were captured from the
//! pre-refactor executor on the diamond, quickstart, and rack-scale
//! workloads, and the runtime must reproduce them bit-for-bit (task
//! order, makespan, movement counters, and the full trace) — at
//! **every shard count**, including under fault injection.
//!
//! Deliberately stays on the deprecated `Runtime::run` shim: these
//! goldens double as proof that the legacy entry points still route
//! through `Runtime::execute` without changing a single byte.
#![allow(deprecated)]

use disagg::hwsim::compute::ComputeModel;
use disagg::hwsim::device::{MemDeviceKind, MemDeviceModel};
use disagg::hwsim::topology::{Endpoint, LinkKind, Topology};
use disagg::prelude::*;
use disagg::workloads::{dbms, hospital, ml, streaming};

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// FNV-1a digests of (task schedule, full trace) — the same fields the
/// pre-refactor capture hashed.
fn report_digest(report: &RunReport, trace: &disagg::hwsim::trace::Trace) -> (u64, u64) {
    let mut h = 0xcbf29ce484222325u64;
    for t in &report.tasks {
        fnv(
            &mut h,
            format!(
                "{}/{}/{}/{:?}/{}/{}",
                t.job.0, t.task.0, t.name, t.compute, t.start, t.finish
            )
            .as_bytes(),
        );
    }
    let mut th = 0xcbf29ce484222325u64;
    for e in trace.events() {
        fnv(&mut th, format!("{e:?}").as_bytes());
    }
    (h, th)
}

fn diamond_workload(shards: usize) -> (Runtime, JobSpec) {
    let mut b = Topology::builder();
    let mut serial_cpu = ComputeModel::preset(ComputeKind::Cpu);
    serial_cpu.slots = 1;
    let w0 = b.node("worker0");
    let w1 = b.node("worker1");
    let cpu0 = b.compute(w0, serial_cpu.clone());
    let cpu1 = b.compute(w1, serial_cpu);
    let dram0 = b.mem(w0, MemDeviceModel::preset(MemDeviceKind::Dram));
    let dram1 = b.mem(w1, MemDeviceModel::preset(MemDeviceKind::Dram));
    b.link(cpu0, dram0, LinkKind::MemBus);
    b.link(cpu1, dram1, LinkKind::MemBus);
    b.link(cpu0, Endpoint::Hub(w0), LinkKind::MemBus);
    b.link(cpu1, Endpoint::Hub(w1), LinkKind::MemBus);
    b.link(Endpoint::Hub(w0), Endpoint::Hub(w1), LinkKind::Numa);
    b.link(Endpoint::Hub(w0), dram0, LinkKind::MemBus);
    b.link(Endpoint::Hub(w1), dram1, LinkKind::MemBus);
    let topo = b.build().unwrap();
    let rt = Runtime::new(topo, RuntimeConfig::traced().with_shards(shards));
    let mut job = JobBuilder::new("diamond");
    let mk = |name: &str| {
        TaskSpec::new(name)
            .work(WorkClass::Scalar, 1_000_000)
            .output_bytes(4096)
            .body(|ctx| {
                ctx.compute(WorkClass::Scalar, 1_000_000);
                ctx.write_output(0, &[1u8; 4096])?;
                Ok(())
            })
    };
    let source = job.task(mk("source"));
    let left = job.task(mk("left"));
    let right = job.task(mk("right"));
    let sink = job.task(mk("sink"));
    job.edge(source, left);
    job.edge(source, right);
    job.edge(left, sink);
    job.edge(right, sink);
    (rt, job.build().unwrap())
}

fn quickstart_workload(shards: usize) -> (Runtime, JobSpec) {
    let (topo, _ids) = disagg::presets::single_server();
    let rt = Runtime::new(topo, RuntimeConfig::traced().with_shards(shards));
    let mut job = JobBuilder::new("quickstart");
    let produce = job.task(
        TaskSpec::new("produce")
            .work(WorkClass::Vector, 100_000)
            .output_bytes(1 << 20)
            .body(|ctx| {
                let chunk = [7u8; 4096];
                for i in 0..256 {
                    ctx.write_output(i * 4096, &chunk)?;
                }
                Ok(())
            }),
    );
    let consume = job.task(
        TaskSpec::new("consume")
            .work(WorkClass::Scalar, 100_000)
            .mem_latency(LatencyClass::Low)
            .private_scratch(1 << 16)
            .body(|ctx| {
                let mut buf = vec![0u8; 1 << 20];
                ctx.read_input(0, &mut buf)?;
                ctx.scratch_write(0, &buf[..64])?;
                Ok(())
            }),
    );
    job.edge(produce, consume);
    (rt, job.build().unwrap())
}

fn rack_batch(shards: usize) -> (Runtime, Vec<JobSpec>) {
    let (topo, _rack) = disagg::presets::disaggregated_rack(3, 16, 3, 128);
    let rt = Runtime::new(
        topo,
        RuntimeConfig::traced().with_admission(0.8).with_shards(shards),
    );
    let jobs = vec![
        dbms::query_job(dbms::DbmsConfig {
            tuples: 8_000,
            probe_tuples: 4_000,
            ..dbms::DbmsConfig::default()
        }),
        ml::training_job(ml::MlConfig {
            samples: 4_096,
            epochs: 2,
            ..ml::MlConfig::default()
        }),
        streaming::windowed_job(streaming::StreamConfig {
            events: 8_000,
            ..streaming::StreamConfig::default()
        }),
        hospital::hospital_job(hospital::HospitalConfig::default()),
    ];
    (rt, jobs)
}

struct Golden {
    makespan: u64,
    tasks: usize,
    bytes_moved: u64,
    ownership_transfers: u64,
    handover_copies: u64,
    task_hash: u64,
    trace_hash: u64,
}

fn check(name: &str, mut rt: Runtime, jobs: Vec<JobSpec>, golden: Golden) {
    let report = rt.run(jobs).unwrap();
    let (task_hash, trace_hash) = report_digest(&report, rt.trace());
    assert_eq!(report.makespan.as_nanos(), golden.makespan, "{name}: makespan");
    assert_eq!(report.tasks.len(), golden.tasks, "{name}: task count");
    assert_eq!(report.bytes_moved, golden.bytes_moved, "{name}: bytes moved");
    assert_eq!(
        report.ownership_transfers, golden.ownership_transfers,
        "{name}: ownership transfers"
    );
    assert_eq!(report.handover_copies, golden.handover_copies, "{name}: handover copies");
    assert_eq!(task_hash, golden.task_hash, "{name}: task schedule digest");
    assert_eq!(trace_hash, golden.trace_hash, "{name}: trace digest");
    assert!(report.events > 0, "{name}: event counter populated");
}

fn diamond_golden() -> Golden {
    Golden {
        makespan: 3_001_495,
        tasks: 4,
        bytes_moved: 20_480,
        ownership_transfers: 3,
        handover_copies: 1,
        task_hash: 0xe293e7ebc900f096,
        trace_hash: 0x9e3410eef683d00f,
    }
}

fn quickstart_golden() -> Golden {
    Golden {
        makespan: 207_832,
        tasks: 2,
        bytes_moved: 2_097_216,
        ownership_transfers: 1,
        handover_copies: 0,
        task_hash: 0x051fb5a6ca2dff73,
        trace_hash: 0x457003e2a7ed9e5a,
    }
}

fn rack_golden() -> Golden {
    Golden {
        makespan: 764_697,
        tasks: 14,
        bytes_moved: 3_495_296,
        ownership_transfers: 8,
        handover_copies: 2,
        task_hash: 0xbdf775c46689c0e8,
        trace_hash: 0xf23d67c2969759eb,
    }
}

#[test]
fn diamond_matches_pre_refactor_golden() {
    let (rt, job) = diamond_workload(1);
    check("diamond", rt, vec![job], diamond_golden());
}

#[test]
fn quickstart_matches_pre_refactor_golden() {
    let (rt, job) = quickstart_workload(1);
    check("quickstart", rt, vec![job], quickstart_golden());
}

#[test]
fn rack_scale_batch_matches_pre_refactor_golden() {
    let (rt, jobs) = rack_batch(1);
    check("rack", rt, jobs, rack_golden());
}

/// The tentpole invariant of the sharded event loop: the shard count is
/// a *driving* detail, never a semantic one. Every pinned golden must
/// reproduce bit-for-bit — same makespan, movement counters, task
/// schedule digest, and full trace digest — whether the wave runs on
/// one event loop or eight (requests beyond the node count clamp).
#[test]
fn sharding_is_bit_for_bit_invariant() {
    for shards in [2, 4, 8] {
        let (rt, job) = diamond_workload(shards);
        check(&format!("diamond@{shards}"), rt, vec![job], diamond_golden());
        let (rt, job) = quickstart_workload(shards);
        check(&format!("quickstart@{shards}"), rt, vec![job], quickstart_golden());
        let (rt, jobs) = rack_batch(shards);
        check(&format!("rack@{shards}"), rt, jobs, rack_golden());
    }
}

/// Shard invariance must also hold on the ugly paths: mid-task node
/// crashes, recovery, memory corruption, detection delays, and retry
/// backoff all route through the same serially-committed event order,
/// so a chaos run replays identically at every shard count.
#[test]
fn faulty_run_is_shard_invariant() {
    use disagg::hwsim::fault::{FaultInjector, FaultKind};

    let run = |shards: usize| {
        let (topo, rack) = disagg::presets::disaggregated_rack(2, 16, 2, 64);
        let mut faults = FaultInjector::none();
        faults.schedule(SimTime(20_000), FaultKind::NodeCrash(rack.nodes[0]));
        faults.schedule(SimTime(60_000), FaultKind::NodeRecover(rack.nodes[0]));
        faults.schedule(
            SimTime(10_000),
            FaultKind::Corrupt { dev: rack.drams[0], offset: 0, len: 1 << 20 },
        );
        let config = RuntimeConfig::traced()
            .with_faults(faults)
            .with_recovery(
                RecoveryPolicy::default()
                    .with_detection_delay(SimDuration(2_000))
                    .with_backoff(SimDuration(1_000)),
            )
            .with_shards(shards);
        let mut rt = Runtime::new(topo, config);
        let job = dbms::query_job(dbms::DbmsConfig {
            tuples: 2_000,
            probe_tuples: 1_000,
            ..dbms::DbmsConfig::default()
        });
        let report = rt.run(vec![job]).unwrap();
        let digests = report_digest(&report, rt.trace());
        (
            digests,
            report.makespan,
            report.events,
            report.ownership_transfers,
            report.handover_copies,
            report.bytes_moved,
        )
    };

    let baseline = run(1);
    for shards in [2, 4, 8] {
        assert_eq!(run(shards), baseline, "chaos run diverged at {shards} shards");
    }
}

/// The streaming observer sees the exact event sequence the buffered
/// trace records: running the rack-scale golden workload with a
/// [`CollectingObserver`] attached yields a stream whose FNV digest
/// equals the buffered trace's digest — which is itself pinned above in
/// [`rack_scale_batch_matches_pre_refactor_golden`]. Observability is a
/// view, not a fork.
#[test]
fn streaming_observer_matches_buffered_trace() {
    use std::sync::{Arc, Mutex};

    let (topo, _rack) = disagg::presets::disaggregated_rack(3, 16, 3, 128);
    let sink = Arc::new(Mutex::new(CollectingObserver::default()));
    let mut rt = Runtime::new(
        topo,
        RuntimeConfig::traced()
            .with_admission(0.8)
            .with_observer(ObserverSlot::shared(sink.clone())),
    );
    let (_, jobs) = rack_batch(1);
    rt.run(jobs).unwrap();

    let digest = |events: &[disagg::hwsim::trace::TraceEvent]| {
        let mut h = 0xcbf29ce484222325u64;
        for e in events {
            fnv(&mut h, format!("{e:?}").as_bytes());
        }
        h
    };
    let streamed = digest(&sink.lock().unwrap().events);
    let buffered = digest(rt.trace().events());
    assert_eq!(streamed, buffered, "streamed events diverge from buffered trace");
    assert_eq!(
        buffered, 0xf23d67c2969759eb,
        "attaching an observer must not perturb the golden trace"
    );
}

/// Observation is free of semantic weight at both extremes: the default
/// [`NullObserver`] run (what every golden above uses) and a run with
/// the everything-sink [`FullObserver`] attached — metrics registry,
/// timelines, buffered events — produce the *same pinned golden
/// digests*. Attaching full observability never moves a byte of the
/// schedule or the trace.
#[test]
fn null_and_full_observers_agree_on_the_golden_digest() {
    use std::sync::{Arc, Mutex};

    // NullObserver (the default slot) — re-derive the pinned digests.
    let (mut rt, jobs) = rack_batch(1);
    let report = rt.run(jobs).unwrap();
    let null_digests = report_digest(&report, rt.trace());

    // FullObserver riding the same run.
    let (topo, _rack) = disagg::presets::disaggregated_rack(3, 16, 3, 128);
    let sink = Arc::new(Mutex::new(FullObserver::new()));
    let mut rt = Runtime::new(
        topo,
        RuntimeConfig::traced()
            .with_admission(0.8)
            .with_observer(ObserverSlot::shared(sink.clone())),
    );
    let (_, jobs) = rack_batch(1);
    let report = rt.run(jobs).unwrap();
    let full_digests = report_digest(&report, rt.trace());

    let golden = rack_golden();
    assert_eq!(null_digests, (golden.task_hash, golden.trace_hash));
    assert_eq!(full_digests, null_digests, "observer choice perturbed the run");

    // The full observer genuinely observed: same event count as the
    // buffered trace, and a non-empty metrics snapshot.
    let full = sink.lock().unwrap();
    assert_eq!(full.events.len(), rt.trace().events().len());
    assert!(full.metrics().is_some_and(|m| !m.is_empty()));
}

#[test]
fn repeated_runs_are_bit_for_bit_identical() {
    let digest = || {
        let (mut rt, jobs) = rack_batch(1);
        let report = rt.run(jobs).unwrap();
        (report_digest(&report, rt.trace()), report.events)
    };
    assert_eq!(digest(), digest());
}
