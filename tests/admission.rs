//! Memory-aware admission control: oversubscribed bursts degrade into
//! waves instead of failing placement.

use disagg::prelude::*;
use disagg::hwsim::compute::{ComputeKind, ComputeModel};
use disagg::hwsim::device::{MemDeviceKind, MemDeviceModel};
use disagg::hwsim::topology::{LinkKind, Topology};

const GIB: u64 = 1 << 30;

/// A one-CPU host with a single 8 GiB DRAM device: small enough that a
/// burst of 3 GiB jobs oversubscribes it.
fn tight_host() -> Topology {
    let mut b = Topology::builder();
    let n = b.node("host");
    let cpu = b.compute(n, ComputeModel::preset(ComputeKind::Cpu));
    let dram = b.mem(n, MemDeviceModel::preset_with_capacity(MemDeviceKind::Dram, 8 * GIB));
    b.link(cpu, dram, LinkKind::MemBus);
    b.build().expect("tight host is valid")
}

fn hungry_job(name: &str, scratch: u64) -> JobSpec {
    let mut j = JobBuilder::new(name);
    j.task(
        TaskSpec::new("work")
            .work(WorkClass::Scalar, 100_000)
            .private_scratch(scratch)
            .body(|ctx| {
                ctx.scratch_write(0, &[1u8; 4096])?;
                ctx.compute(WorkClass::Scalar, 100_000);
                Ok(())
            }),
    );
    j.build().expect("valid job")
}

fn burst(n: usize, scratch: u64) -> Vec<JobSpec> {
    (0..n).map(|i| hungry_job(&format!("job{i}"), scratch)).collect()
}

#[test]
fn oversubscribed_burst_fails_without_admission() {
    let mut rt = Runtime::new(tight_host(), RuntimeConfig::traced());
    // 4 x 3 GiB on an 8 GiB device: concurrent footprints cannot fit.
    let err = rt.execute(burst(4, 3 * GIB)).unwrap_err();
    assert!(matches!(err, RuntimeError::Placement { .. }), "got {err}");
}

#[test]
fn admission_turns_the_same_burst_into_waves() {
    let mut rt = Runtime::new(tight_host(), RuntimeConfig::traced().with_admission(0.8));
    let report = rt.execute(burst(4, 3 * GIB)).expect("admitted in waves");
    assert_eq!(report.tasks.len(), 4, "every job eventually ran");
    // 8 GiB * 0.8 = 6.4 GiB budget → two 3 GiB jobs per wave → 2 waves.
    // The second wave starts after the first finishes, so the makespan
    // roughly doubles a single wave's.
    let single = {
        let mut rt = Runtime::new(tight_host(), RuntimeConfig::traced());
        rt.execute(burst(2, 3 * GIB)).unwrap().makespan
    };
    assert!(
        report.makespan.as_nanos() >= 2 * single.as_nanos() * 9 / 10,
        "two waves {} should take ~2x one wave {}",
        report.makespan,
        single
    );
}

#[test]
fn admission_leaves_small_batches_alone() {
    let mk = || burst(3, 256 << 20);
    let with = {
        let mut rt = Runtime::new(tight_host(), RuntimeConfig::traced().with_admission(0.8));
        rt.execute(mk()).unwrap()
    };
    let without = {
        let mut rt = Runtime::new(tight_host(), RuntimeConfig::traced());
        rt.execute(mk()).unwrap()
    };
    assert_eq!(with.makespan, without.makespan, "no split when everything fits");
    assert_eq!(with.tasks.len(), without.tasks.len());
}

#[test]
fn a_single_oversized_job_is_still_admitted_alone() {
    // 7 GiB on 8 GiB with a 0.5 watermark (4 GiB budget): the job exceeds
    // the budget by itself, but refusing it forever would be a livelock —
    // it is admitted alone and succeeds because the device can hold it.
    let mut rt = Runtime::new(tight_host(), RuntimeConfig::traced().with_admission(0.5));
    let report = rt.execute(burst(1, 7 * GIB)).expect("solo admission");
    assert_eq!(report.tasks.len(), 1);
}
