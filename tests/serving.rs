//! Serving-layer integration: the open-loop request stream must be
//! bit-for-bit deterministic across executions and shard counts, quotas
//! must bind per tenant, and the SLO histograms must agree with the
//! underlying executor report.

use disagg::hwsim::presets::disaggregated_rack;
use disagg::hwsim::time::SimDuration;
use disagg::obs::Histogram;
use disagg::prelude::*;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn run_digest(report: &RunReport) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for t in &report.tasks {
        fnv(
            &mut h,
            format!(
                "{}/{}/{}/{:?}/{}/{}",
                t.job.0, t.task.0, t.name, t.compute, t.start, t.finish
            )
            .as_bytes(),
        );
    }
    h
}

/// A small two-template mix: a scalar chain and a vector fan-out, both
/// jittered per request off the request seed.
fn mix() -> ServeLayer {
    let mut layer = ServeLayer::new();
    layer.register("chain", |req: &Request| {
        let mut j = JobBuilder::new("chain");
        let a = j.task(
            TaskSpec::new("a")
                .work(WorkClass::Scalar, 20_000 + req.seed % 1_000)
                .output_bytes(1 << 20),
        );
        let b = j.task(TaskSpec::new("b").work(WorkClass::Scalar, 10_000));
        j.edge(a, b);
        j.build().expect("chain template")
    });
    layer.register("fan", |req: &Request| {
        let mut j = JobBuilder::new("fan");
        let src = j.task(
            TaskSpec::new("src")
                .work(WorkClass::Vector, 30_000 + req.seed % 2_000)
                .output_bytes(4 << 20),
        );
        let sink = j.task(TaskSpec::new("sink").work(WorkClass::Scalar, 5_000));
        for i in 0..3 {
            let mid = j.task(
                TaskSpec::new(format!("mid{i}"))
                    .work(WorkClass::Vector, 10_000)
                    .output_bytes(1 << 20),
            );
            j.edge(src, mid);
            j.edge(mid, sink);
        }
        j.build().expect("fan template")
    });
    layer
}

fn cfg() -> ServeConfig {
    ServeConfig {
        arrivals: ArrivalProcess::Poisson { mean_gap: SimDuration::from_micros(50) },
        requests: 32,
        tenants: 4,
        zipf_theta: 0.9,
        seed: 0xbeef,
        slo: Some(Slo {
            p50: SimDuration::from_micros(200),
            p99: SimDuration::from_millis(5),
        }),
        ..ServeConfig::default()
    }
}

fn serve_once(shards: usize) -> (ServeReport, u64) {
    let (topo, _rack) = disaggregated_rack(2, 4, 1, 8);
    let mut rt = Runtime::new(topo, RuntimeConfig::traced().with_shards(shards));
    let report = mix().run(&mut rt, &cfg()).expect("serving run");
    let digest = run_digest(&report.run);
    (report, digest)
}

/// The same seeded stream must reproduce byte-identically across two
/// executions and across shard counts — arrivals, tenant mix, admission
/// verdicts, latencies, histograms, and the executor schedule itself.
#[test]
fn serving_is_deterministic_across_runs_and_shards() {
    let (base, base_digest) = serve_once(1);
    assert!(base.admitted > 0, "stream must admit work");
    for shards in [1usize, 4] {
        let (rep, digest) = serve_once(shards);
        assert_eq!(
            format!("{:?}", rep.requests),
            format!("{:?}", base.requests),
            "request records diverged at {shards} shard(s)"
        );
        assert_eq!(
            format!("{:?}", rep.sojourn),
            format!("{:?}", base.sojourn),
            "sojourn histogram diverged at {shards} shard(s)"
        );
        assert_eq!(rep.makespan, base.makespan, "makespan diverged at {shards} shard(s)");
        assert_eq!(digest, base_digest, "executor schedule diverged at {shards} shard(s)");
    }
}

/// A tenant whose quota cannot hold even one request footprint is
/// starved out while every other tenant proceeds untouched.
#[test]
fn tenant_quota_rejects_without_collateral_damage() {
    let (topo, _rack) = disaggregated_rack(2, 4, 1, 8);
    let mut rt = Runtime::new(topo, RuntimeConfig::default());
    let mut c = cfg();
    c.tenant_quotas = vec![(1, 1024)]; // far below any template footprint
    let report = mix().run(&mut rt, &c).expect("serving run");

    let starved = &report.tenants[1];
    assert!(starved.offered > 0, "seeded mix must offer tenant 1 traffic");
    assert_eq!(starved.admitted, 0, "1 KiB quota cannot admit any request");
    assert_eq!(starved.rejected, starved.offered);
    for t in report.tenants.iter().filter(|t| t.tenant != 1) {
        assert_eq!(t.rejected, 0, "tenant {} must be untouched", t.tenant);
        assert_eq!(t.admitted, t.offered);
    }
    for r in report.requests.iter().filter(|r| r.tenant == 1) {
        assert!(!r.admitted);
        assert!(r.latency.is_none(), "rejected requests never execute");
    }
    assert_eq!(report.admitted + report.rejected, report.offered);
}

/// Per-request attribution over a faulty serving mix: every admitted
/// request's five components (admission + queue + compute + transfer +
/// recovery) sum *exactly* to its end-to-end latency — conservative and
/// complete, even with crashes, corruption, retries, and online
/// reconstruction in the run — and the spans, tail attribution, and
/// burn curves are bit-for-bit identical at 1 and 4 shards.
#[test]
fn request_attribution_is_conservative_and_shard_invariant_under_faults() {
    use disagg::hwsim::fault::{FaultInjector, FaultKind};
    use disagg::hwsim::trace::TraceEvent;

    // A denser stream than `cfg()` so tasks are in flight when the
    // chaos plan strikes.
    let dense = || ServeConfig {
        arrivals: ArrivalProcess::Poisson { mean_gap: SimDuration::from_micros(15) },
        requests: 48,
        ..cfg()
    };

    // Probe the healthy horizon so the chaos schedule lands mid-run.
    let horizon = {
        let (topo, _rack) = disaggregated_rack(2, 4, 1, 8);
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        mix().run(&mut rt, &dense()).expect("probe run").makespan
    };

    let serve_faulty = |shards: usize| {
        let (topo, rack) = disaggregated_rack(2, 4, 1, 8);
        let mut faults = FaultInjector::none();
        // Rotating crash/recover pairs across the whole horizon, each
        // node repaired after an eighth of the run.
        let mttf = horizon.0 / 4;
        for k in 1..=4u64 {
            let node = rack.nodes[(k as usize - 1) % rack.nodes.len()];
            faults.schedule(SimTime(k * mttf), FaultKind::NodeCrash(node));
            faults.schedule(SimTime(k * mttf + mttf / 2), FaultKind::NodeRecover(node));
        }
        // Corruption bursts on local DRAM and the pool blade, early
        // enough that later requests read through them.
        for dev in [rack.drams[0], rack.pool[0]] {
            faults.schedule(
                SimTime(horizon.0 / 8),
                FaultKind::Corrupt { dev, offset: 0, len: 4 << 20 },
            );
        }
        let config = RuntimeConfig::traced()
            .with_shards(shards)
            .with_faults(faults)
            .with_recovery(
                RecoveryPolicy::default()
                    .with_detection_delay(SimDuration(2_000))
                    .with_backoff(SimDuration(1_000)),
            );
        let mut rt = Runtime::new(topo, config);
        let report = mix().run(&mut rt, &dense()).expect("faulty serving run");
        let fault_activity = rt.trace().events().iter().any(|e| {
            matches!(
                e,
                TraceEvent::TaskRetry { .. }
                    | TraceEvent::Reconstruct { .. }
                    | TraceEvent::FaultDetected { .. }
            )
        });
        (report, fault_activity)
    };

    let (base, faults_hit) = serve_faulty(1);
    assert!(base.admitted > 0, "stream must admit work");
    assert!(faults_hit, "the chaos schedule must actually disturb the run");
    assert_eq!(base.spans.len(), base.admitted, "one span per admitted request");
    for s in &base.spans {
        let rec = &base.requests[s.request as usize];
        assert_eq!(
            rec.latency,
            Some(s.latency()),
            "span sojourn must match the record for request {}",
            s.request
        );
        assert_eq!(
            s.attribution.total(),
            s.latency(),
            "attribution must be conservative and complete for request {}",
            s.request
        );
        // Segments tile the sojourn with no gaps or overlaps.
        assert_eq!(s.segments.first().expect("non-empty span").start, s.arrival);
        assert_eq!(s.segments.last().expect("non-empty span").end, s.end);
        for w in s.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must tile request {}", s.request);
        }
    }

    let (other, _) = serve_faulty(4);
    assert_eq!(
        format!("{:?}", other.spans),
        format!("{:?}", base.spans),
        "request spans diverged at 4 shards"
    );
    assert_eq!(
        format!("{:?}", other.tail_attribution),
        format!("{:?}", base.tail_attribution),
        "tail attribution diverged at 4 shards"
    );
    assert_eq!(
        format!("{:?}", other.burn),
        format!("{:?}", base.burn),
        "burn curves diverged at 4 shards"
    );
}

/// The full fault-aware control plane — retry budgets, circuit
/// breakers, deadline shedding, and brownout degradation — must be
/// bit-for-bit deterministic across two executions and across shard
/// counts under an active fault plan: every request verdict, latency,
/// breaker transition, and shed/degraded/fast-failed count agrees.
#[test]
fn fault_aware_controls_are_deterministic_across_runs_and_shards() {
    use disagg::hwsim::fault::{FaultInjector, FaultKind};
    use disagg::serve::ControlPlane;

    let dense = || ServeConfig {
        arrivals: ArrivalProcess::Poisson { mean_gap: SimDuration::from_micros(15) },
        requests: 48,
        control: Some(ControlPlane { epochs: 4, ..ControlPlane::default() }),
        ..cfg()
    };

    // Probe the healthy horizon so the fault windows land mid-run.
    let horizon = {
        let (topo, _rack) = disaggregated_rack(2, 4, 1, 8);
        let mut rt = Runtime::new(topo, RuntimeConfig::default());
        mix().run(&mut rt, &dense()).expect("probe run").makespan
    };

    let serve_controlled = |shards: usize| {
        let (topo, rack) = disaggregated_rack(2, 4, 1, 8);
        let mut faults = FaultInjector::none();
        let mttf = horizon.0 / 4;
        for k in 1..=2u64 {
            let node = rack.nodes[(k as usize - 1) % rack.nodes.len()];
            faults.schedule(SimTime(k * mttf), FaultKind::NodeCrash(node));
            faults.schedule(SimTime(k * mttf + mttf / 2), FaultKind::NodeRecover(node));
        }
        let config = RuntimeConfig::traced()
            .with_shards(shards)
            .with_faults(faults)
            .with_recovery(
                RecoveryPolicy::default()
                    .with_detection_delay(SimDuration(2_000))
                    .with_backoff(SimDuration(1_000)),
            )
            .with_fault_control(
                FaultControlPolicy::default()
                    .with_retry_budget(RetryBudgetPolicy::default().with_capacity(2))
                    .with_breakers(
                        BreakerPolicy::default()
                            .with_trip_after(1)
                            .with_cooldown(SimDuration::from_micros(100)),
                    )
                    .with_isolation(),
            );
        let mut rt = Runtime::new(topo, config);
        let mut layer = mix();
        layer.register_degraded("chain", |req: &Request| {
            let mut j = JobBuilder::new("chain-lite");
            j.task(TaskSpec::new("a").work(WorkClass::Scalar, 5_000 + req.seed % 500));
            j.build().expect("degraded chain template")
        });
        let report = layer.run(&mut rt, &dense()).expect("controlled serving run");
        let digest = run_digest(&report.run);
        (report, digest)
    };

    let (base, base_digest) = serve_controlled(1);
    assert!(base.admitted > 0, "stream must admit work");
    assert!(
        !base.breaker_transitions.is_empty(),
        "mid-run node crashes must trip a breaker"
    );
    assert_eq!(
        base.fast_failed,
        base.run.failed_jobs.len(),
        "every fast-failure maps to exactly one isolated job"
    );
    assert_eq!(
        base.offered,
        base.admitted + base.rejected + base.shed,
        "verdicts partition the offered stream"
    );

    for shards in [1usize, 4] {
        let (rep, digest) = serve_controlled(shards);
        assert_eq!(
            format!("{:?}", rep.requests),
            format!("{:?}", base.requests),
            "request records diverged at {shards} shard(s)"
        );
        assert_eq!(
            format!("{:?}", rep.breaker_transitions),
            format!("{:?}", base.breaker_transitions),
            "breaker transitions diverged at {shards} shard(s)"
        );
        assert_eq!(
            format!("{:?}", rep.tenants),
            format!("{:?}", base.tenants),
            "tenant stats diverged at {shards} shard(s)"
        );
        assert_eq!(
            (rep.shed, rep.degraded, rep.fast_failed),
            (base.shed, base.degraded, base.fast_failed),
            "control verdicts diverged at {shards} shard(s)"
        );
        assert_eq!(rep.makespan, base.makespan, "makespan diverged at {shards} shard(s)");
        assert_eq!(digest, base_digest, "executor schedule diverged at {shards} shard(s)");
    }
}

/// The per-tenant SLO histograms must agree with latencies derived
/// directly from the executor's task spans: rebuilding each tenant's
/// sojourn histogram from the run report reproduces the published
/// p50/p99 bounds exactly.
#[test]
fn slo_histograms_agree_with_run_report_task_spans() {
    let (report, _) = serve_once(1);

    // Admitted requests map to jobs in admission order starting at the
    // smallest JobId in the batch.
    let base = report
        .run
        .tasks
        .iter()
        .map(|t| t.job.0)
        .min()
        .expect("admitted work exists");
    let mut finish_of_job = std::collections::HashMap::new();
    for t in &report.run.tasks {
        let f = finish_of_job.entry(t.job.0).or_insert(t.finish);
        if t.finish > *f {
            *f = t.finish;
        }
    }

    let mut rebuilt: Vec<Histogram> = (0..4).map(|_| Histogram::default()).collect();
    let mut next_job = base;
    for r in &report.requests {
        if !r.admitted {
            continue;
        }
        let finish = finish_of_job[&next_job];
        next_job += 1;
        let latency = finish - (SimTime::ZERO + r.arrival);
        assert_eq!(
            Some(latency),
            r.latency,
            "request {} latency must equal its job's last task finish minus arrival",
            r.index
        );
        rebuilt[r.tenant].observe(latency.as_nanos());
    }

    for t in &report.tenants {
        if t.admitted == 0 {
            continue;
        }
        let h = &rebuilt[t.tenant];
        assert_eq!(SimDuration::from_nanos(h.quantile_bound(0.50)), t.p50);
        assert_eq!(SimDuration::from_nanos(h.quantile_bound(0.99)), t.p99);
        let slo = t.slo.expect("config sets a global SLO");
        assert_eq!(t.slo_met, t.p50 <= slo.p50 && t.p99 <= slo.p99);
    }
}
