//! Cross-crate integration tests: build → place → schedule → execute →
//! verify, at rack scale and across failure scenarios.

use disagg::prelude::*;
use disagg::hwsim::fault::{FaultEvent, FaultInjector, FaultKind};
use disagg::presets::{disaggregated_rack, single_server};
use disagg::region::region::OwnerId;
use disagg::workloads::{dbms, hospital, hpc, ml, streaming, util};

#[test]
fn all_four_table3_workloads_verify_on_one_runtime() {
    // One runtime, four application classes back-to-back; every answer
    // checked against its reference implementation.
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());

    let dcfg = dbms::DbmsConfig {
        tuples: 3_000,
        probe_tuples: 1_500,
        ..dbms::DbmsConfig::default()
    };
    let report = rt.execute(dbms::query_job(dcfg)).unwrap();
    let (matches, groups, total) =
        dbms::decode_result(&util::final_output(&rt, &report, JobId(0), "hash-join"));
    let exp = dbms::expected(&dcfg);
    assert_eq!((matches, groups as usize, total), (exp.join_matches, exp.groups, exp.total_sum));

    let mcfg = ml::MlConfig {
        samples: 1_024,
        epochs: 2,
        ..ml::MlConfig::default()
    };
    let report = rt.execute(ml::training_job(mcfg)).unwrap();
    let model = ml::decode_model(&util::final_output(&rt, &report, JobId(1), "train"));
    assert_eq!(model, ml::expected_model(&mcfg));

    let hcfg = hpc::HpcConfig {
        cells: 2_048,
        sweeps: 5,
        ..hpc::HpcConfig::default()
    };
    let report = rt.execute(hpc::stencil_job(hcfg)).unwrap();
    let sum = hpc::decode_sum(&util::final_output(&rt, &report, JobId(2), "reduce"));
    assert_eq!(sum, hpc::expected_sum(&hcfg));

    let scfg = streaming::StreamConfig {
        events: 3_000,
        ..streaming::StreamConfig::default()
    };
    let report = rt.execute(streaming::windowed_job(scfg)).unwrap();
    let windows = streaming::decode_result(&util::final_output(&rt, &report, JobId(3), "sink"));
    assert_eq!(windows, streaming::expected_windows(&scfg));
}

#[test]
fn rack_scale_batch_of_mixed_jobs_runs_clean() {
    let (topo, _) = disaggregated_rack(3, 16, 3, 256);
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let jobs = vec![
        dbms::query_job(dbms::DbmsConfig {
            tuples: 2_000,
            probe_tuples: 1_000,
            ..dbms::DbmsConfig::default()
        }),
        ml::training_job(ml::MlConfig {
            samples: 1_024,
            epochs: 1,
            ..ml::MlConfig::default()
        }),
        streaming::windowed_job(streaming::StreamConfig {
            events: 2_000,
            ..streaming::StreamConfig::default()
        }),
        hospital::hospital_job(hospital::HospitalConfig {
            frames: 3,
            ..hospital::HospitalConfig::default()
        }),
    ];
    let report = rt.execute(jobs).unwrap();
    assert_eq!(report.tasks.len(), 3 + 3 + 3 + 5);
    assert!(report.placements_clean(), "{:?}", report.violations);
    assert!(report.makespan > SimDuration::ZERO);
    // Jobs are isolated: no region outlives the batch except persistent
    // outputs (hospital alerts, dbms join result, ml model, hpc none,
    // streaming sink).
    let live = rt.manager().live_count();
    assert!(live <= 5, "only persistent outputs may survive, found {live}");
}

#[test]
fn persistent_results_survive_across_batches_and_crashes() {
    let (topo, ids) = single_server();
    let pmem_node = topo.node_of_mem(ids.pmem);
    // The node crashes *after* the first batch and recovers later.
    let faults = FaultInjector::with_events(vec![
        FaultEvent {
            at: SimTime(1_000_000_000),
            kind: FaultKind::NodeCrash(pmem_node),
        },
        FaultEvent {
            at: SimTime(2_000_000_000),
            kind: FaultKind::NodeRecover(pmem_node),
        },
    ]);
    let mut rt = Runtime::new(topo, RuntimeConfig::traced().with_faults(faults));

    let mut job = JobBuilder::new("writer");
    job.task(
        TaskSpec::new("persist")
            .persistent(true)
            .output_bytes(4096)
            .body(|ctx| {
                ctx.write_output(0, b"durable state")?;
                Ok(())
            }),
    );
    let report = rt.execute(job.build().unwrap()).unwrap();
    let (_, region, dev) = report.tasks[0]
        .placements
        .iter()
        .find(|(k, _, _)| *k == "output")
        .copied()
        .unwrap();
    assert!(rt.topology().mem(dev).persistent);

    // Another batch runs; the persistent region is still live and intact
    // afterwards (the device is persistent, so the crash between batches
    // does not erase it).
    let mut job2 = JobBuilder::new("other");
    job2.task(TaskSpec::new("noop").body(|_| Ok(())));
    rt.execute(job2.build().unwrap()).unwrap();

    let mut buf = [0u8; 13];
    rt.manager().read(region, OwnerId::App, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"durable state");
}

#[test]
fn confidential_jobs_are_isolated_from_each_other() {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());

    let mut secret_job = JobBuilder::new("secret");
    secret_job.task(
        TaskSpec::new("keeper")
            .confidential(true)
            .persistent(true)
            .output_bytes(1024)
            .body(|ctx| {
                ctx.write_output(0, b"patient records")?;
                Ok(())
            }),
    );
    let report = rt.execute(secret_job.build().unwrap()).unwrap();
    let (_, secret, _) = report.tasks[0]
        .placements
        .iter()
        .find(|(k, _, _)| *k == "output")
        .copied()
        .unwrap();

    // Direct cross-job read through the region manager is denied.
    let snoop = OwnerId::Task { job: 99, task: 0 };
    let mut buf = [0u8; 8];
    let err = rt.manager().read(secret, snoop, 0, &mut buf).unwrap_err();
    assert!(matches!(
        err,
        disagg::region::RegionError::ConfidentialityViolation { .. }
    ));
}

#[test]
fn the_compute_centric_baseline_still_computes_correctly() {
    // Figure 1a semantics produce identical answers, just different cost.
    let cfg = dbms::DbmsConfig {
        tuples: 2_000,
        probe_tuples: 1_000,
        ..dbms::DbmsConfig::default()
    };
    let exp = dbms::expected(&cfg);
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::compute_centric());
    let report = rt.execute(dbms::query_job(cfg)).unwrap();
    let (matches, groups, total) =
        dbms::decode_result(&util::final_output(&rt, &report, JobId(0), "hash-join"));
    assert_eq!((matches, groups as usize, total), (exp.join_matches, exp.groups, exp.total_sum));
    assert_eq!(report.ownership_transfers, 0, "compute-centric copies everything");
}

#[test]
fn trace_accounts_for_every_byte_of_a_pipeline() {
    let (topo, _) = single_server();
    let mut rt = Runtime::new(topo, RuntimeConfig::traced());
    let mut job = JobBuilder::new("traced");
    let a = job.task(
        TaskSpec::new("a")
            .output_bytes(1 << 16)
            .body(|ctx| {
                ctx.write_output(0, &[1u8; 1 << 16])?;
                Ok(())
            }),
    );
    let b = job.task(TaskSpec::new("b").body(|ctx| {
        let mut buf = vec![0u8; 1 << 16];
        ctx.read_input(0, &mut buf)?;
        Ok(())
    }));
    job.edge(a, b);
    let report = rt.execute(job.build().unwrap()).unwrap();
    // Write (64 KiB) + read (64 KiB) accesses, zero handover movement.
    assert_eq!(report.bytes_moved, 2 << 16);
    assert_eq!(report.bytes_ownership_transferred, 1 << 16);
    let accesses = rt
        .trace()
        .count(|e| matches!(e, disagg::hwsim::trace::TraceEvent::Access { .. }));
    assert_eq!(accesses, 2);
}
