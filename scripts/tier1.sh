#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green (see ROADMAP.md).
#
# Usage:
#   scripts/tier1.sh             # build + test with network allowed
#   scripts/tier1.sh --offline   # same, but forbid any crates.io access
#
# The workspace has no external dependencies, so --offline must always
# succeed on a cold cache; CI runs it that way.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
for arg in "$@"; do
  case "$arg" in
    --offline) CARGO_FLAGS+=(--offline) ;;
    *)
      echo "unknown option: $arg" >&2
      echo "usage: scripts/tier1.sh [--offline]" >&2
      exit 2
      ;;
  esac
done

echo "==> cargo build --release ${CARGO_FLAGS[*]:-}"
cargo build --release "${CARGO_FLAGS[@]}"

echo "==> cargo test -q --workspace ${CARGO_FLAGS[*]:-}"
cargo test -q --workspace "${CARGO_FLAGS[@]}"

echo "tier-1 gate: OK"
