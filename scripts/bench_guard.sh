#!/usr/bin/env bash
# Throughput regression guard: re-measures the stress suite and fails if
# the reference configuration's events/sec drops more than 10% below the
# committed BENCH_disagg.json record.
#
# Usage:
#   scripts/bench_guard.sh                 # guard j16_l24_w24 at 0.90×
#   scripts/bench_guard.sh j8_l16_w16      # guard another config
#   TOLERANCE=0.80 scripts/bench_guard.sh  # loosen the floor
#   RUNS=5 scripts/bench_guard.sh          # more samples (best-of)
#
# Wall-clock numbers only compare within one host class: run this on the
# same machine class that produced the committed record (the record is
# regenerated whenever the benchmark host changes).
set -euo pipefail
cd "$(dirname "$0")/.."

CONFIG=${1:-j16_l24_w24}
TOLERANCE=${TOLERANCE:-0.90}
RUNS=${RUNS:-3}

committed=$(python3 - "$CONFIG" <<'PY'
import json, sys
rec = json.load(open("BENCH_disagg.json"))
rows = [t for t in rec.get("throughput", []) if t["name"] == sys.argv[1]]
if not rows:
    sys.exit(f"bench_guard: no committed throughput entry for {sys.argv[1]}")
print(int(rows[0]["events_per_sec"]))
PY
)

echo "==> cargo build --release --offline -p disagg-bench --bin exp_driver" >&2
cargo build --release --offline -p disagg-bench --bin exp_driver >&2

# --thru-only measures the full stress suite (best of 3 reps) without
# the experiment tables or chaos sweep; the numbers land on stderr.
# Wall-clock noise on small/shared hosts easily exceeds 10%, so the
# guard keeps the best of $RUNS whole-suite samples: a real regression
# slows every sample, noise only some.
fresh=0
for run in $(seq "$RUNS"); do
  fresh_log=$(./target/release/exp_driver --thru-only --no-scaling --no-json 2>&1 >/dev/null)
  sample=$(printf '%s\n' "$fresh_log" \
    | sed -n "s/^throughput ${CONFIG} .*→ \([0-9][0-9]*\) events\/sec.*/\1/p")
  if [ -z "$sample" ]; then
    echo "bench_guard: no fresh measurement for ${CONFIG} in driver output" >&2
    exit 1
  fi
  echo "bench_guard: sample ${run}/${RUNS}: ${sample} events/sec" >&2
  if [ "$sample" -gt "$fresh" ]; then fresh=$sample; fi
done

ok=$(awk -v f="$fresh" -v c="$committed" -v t="$TOLERANCE" \
  'BEGIN { print (f >= c * t) ? 1 : 0 }')
if [ "$ok" != "1" ]; then
  echo "bench_guard: ${CONFIG} REGRESSED: fresh ${fresh} events/sec" \
       "< ${TOLERANCE} x committed ${committed}" >&2
  exit 1
fi
echo "bench_guard: ${CONFIG} OK: fresh ${fresh} events/sec vs committed ${committed} (floor ${TOLERANCE}x)"
