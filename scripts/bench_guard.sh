#!/usr/bin/env bash
# Throughput regression guard: re-measures the stress suite and fails if
# any guarded configuration's events/sec drops more than 10% below the
# committed BENCH_disagg.json record.
#
# Guards the reference stress configuration and, when the committed
# record carries one, the serving-mix measurement (the open-loop
# multi-tenant stream from crates/serve driven at saturation).
#
# Also gates observer overhead: the trace_overhead microbenchmark
# measures the same stress batch with no observer and with a streaming
# FullObserver attached, and the guard fails if having observability
# *on* costs more than OBS_OVERHEAD_MAX percent of events/sec.
#
# Also gates goodput under chaos: when the committed record carries a
# serving.chaos section, a fresh quick chaos-under-load sweep must keep
# the fault-aware control plane strictly ahead of the uncontrolled
# baseline on SLO goodput, and its overall controls goodput fraction
# must stay within CHAOS_TOLERANCE of the committed fraction. The sweep
# is virtual-time-only, so this gate is deterministic (no wall-clock
# noise).
#
# Usage:
#   scripts/bench_guard.sh                 # guard j16_l24_w24 (+ serving_mix)
#   scripts/bench_guard.sh j8_l16_w16      # guard another config
#   TOLERANCE=0.80 scripts/bench_guard.sh  # loosen the floor
#   RUNS=5 scripts/bench_guard.sh          # more samples (best-of)
#   OBS_OVERHEAD_MAX=15 scripts/bench_guard.sh  # loosen the observer gate
#   CHAOS_TOLERANCE=0.80 scripts/bench_guard.sh # loosen the chaos floor
#
# Wall-clock numbers only compare within one host class: run this on the
# same machine class that produced the committed record (the record is
# regenerated whenever the benchmark host changes).
set -euo pipefail
cd "$(dirname "$0")/.."

PRIMARY=${1:-j16_l24_w24}
TOLERANCE=${TOLERANCE:-0.90}
RUNS=${RUNS:-3}

# The primary config must have a committed record; serving_mix is
# guarded only when the committed JSON already carries it (older
# records predate the serving layer).
CONFIGS=$(python3 - "$PRIMARY" <<'PY'
import json, sys
rec = json.load(open("BENCH_disagg.json"))
names = [t["name"] for t in rec.get("throughput", [])]
if sys.argv[1] not in names:
    sys.exit(f"bench_guard: no committed throughput entry for {sys.argv[1]}")
configs = [sys.argv[1]]
if "serving_mix" in names and sys.argv[1] != "serving_mix":
    configs.append("serving_mix")
print(" ".join(configs))
PY
)

committed_of() {
  python3 - "$1" <<'PY'
import json, sys
rec = json.load(open("BENCH_disagg.json"))
rows = [t for t in rec.get("throughput", []) if t["name"] == sys.argv[1]]
print(int(rows[0]["events_per_sec"]))
PY
}

echo "==> cargo build --release --offline -p disagg-bench --bin exp_driver" >&2
cargo build --release --offline -p disagg-bench --bin exp_driver >&2

# --thru-only measures the full stress suite plus the serving mix (best
# of 3 reps) without the experiment tables or chaos sweep; the numbers
# land on stderr. Wall-clock noise on small/shared hosts easily exceeds
# 10%, so the guard keeps the best of $RUNS whole-suite samples: a real
# regression slows every sample, noise only some.
declare -A fresh
for cfg in $CONFIGS; do fresh[$cfg]=0; done
for run in $(seq "$RUNS"); do
  fresh_log=$(./target/release/exp_driver --thru-only --no-scaling --no-json 2>&1 >/dev/null)
  for cfg in $CONFIGS; do
    sample=$(printf '%s\n' "$fresh_log" \
      | sed -n "s/^throughput ${cfg} .*→ \([0-9][0-9]*\) events\/sec.*/\1/p")
    if [ -z "$sample" ]; then
      echo "bench_guard: no fresh measurement for ${cfg} in driver output" >&2
      exit 1
    fi
    echo "bench_guard: ${cfg} sample ${run}/${RUNS}: ${sample} events/sec" >&2
    if [ "$sample" -gt "${fresh[$cfg]}" ]; then fresh[$cfg]=$sample; fi
  done
done

# Observer-overhead gate: re-run only the trace_overhead group of the
# micro suite (the bench binary accepts substring filters) and parse the
# summary line
#   trace_overhead/events_per_sec  null N | full observer M (X% slower) | ...
# Two thresholds:
#   - the streaming FullObserver legitimately costs events/sec
#     (OBS_BASELINE is the committed overhead); the gate fails if it
#     regresses more than OBS_OVERHEAD_MAX percentage points past that.
#   - buffered tracing (RuntimeConfig::traced) must stay within
#     OBS_OVERHEAD_MAX points of the null-observer run outright — the
#     design claims having observability *available* is near-free.
# The ratio is noisy on shared hosts, so keep the best (lowest
# overhead) of $RUNS samples: a real regression slows every sample.
OBS_BASELINE=${OBS_BASELINE:-40}
OBS_OVERHEAD_MAX=${OBS_OVERHEAD_MAX:-10}
obs_cmd=(cargo bench --offline -p disagg-bench --bench micro -- trace_overhead)
echo "==> ${obs_cmd[*]} (x${RUNS})" >&2
full_best=""
traced_best=""
for run in $(seq "$RUNS"); do
  obs_line=$("${obs_cmd[@]}" 2>/dev/null | grep '^trace_overhead/events_per_sec' || true)
  full=$(printf '%s\n' "$obs_line" \
    | sed -n 's/.*full observer [0-9]* (\(-\{0,1\}[0-9.]*\)% slower).*/\1/p')
  traced=$(printf '%s\n' "$obs_line" \
    | sed -n 's/.*buffered trace [0-9]* (\(-\{0,1\}[0-9.]*\)% slower).*/\1/p')
  if [ -z "$full" ] || [ -z "$traced" ]; then
    echo "bench_guard: could not parse observer overheads from micro output" >&2
    exit 1
  fi
  echo "bench_guard: observer sample ${run}/${RUNS}: full ${full}% traced ${traced}%" >&2
  full_best=$(awk -v a="${full_best:-$full}" -v b="$full" 'BEGIN { print (a < b) ? a : b }')
  traced_best=$(awk -v a="${traced_best:-$traced}" -v b="$traced" 'BEGIN { print (a < b) ? a : b }')
done

status=0
obs_ok=$(awk -v f="$full_best" -v base="$OBS_BASELINE" -v m="$OBS_OVERHEAD_MAX" \
  -v t="$traced_best" 'BEGIN { print (f <= base + m && t <= m) ? 1 : 0 }')
if [ "$obs_ok" != "1" ]; then
  echo "bench_guard: observer overhead REGRESSED: full observer ${full_best}%" \
       "(committed ${OBS_BASELINE}% + ${OBS_OVERHEAD_MAX} margin)," \
       "buffered trace ${traced_best}% (max ${OBS_OVERHEAD_MAX}%)" >&2
  status=1
else
  echo "bench_guard: observer overhead OK: full observer ${full_best}%" \
       "(committed ${OBS_BASELINE}% + ${OBS_OVERHEAD_MAX} margin)," \
       "buffered trace ${traced_best}% (max ${OBS_OVERHEAD_MAX}%)"
fi

for cfg in $CONFIGS; do
  committed=$(committed_of "$cfg")
  ok=$(awk -v f="${fresh[$cfg]}" -v c="$committed" -v t="$TOLERANCE" \
    'BEGIN { print (f >= c * t) ? 1 : 0 }')
  if [ "$ok" != "1" ]; then
    echo "bench_guard: ${cfg} REGRESSED: fresh ${fresh[$cfg]} events/sec" \
         "< ${TOLERANCE} x committed ${committed}" >&2
    status=1
  else
    echo "bench_guard: ${cfg} OK: fresh ${fresh[$cfg]} events/sec vs committed ${committed} (floor ${TOLERANCE}x)"
  fi
done

# Goodput-under-chaos gate (skipped when the committed record predates
# the chaos-under-load sweep). The fresh sweep runs in quick mode —
# different load levels than the committed full-mode record, so the
# comparison is on goodput *fractions* (SLO goodput / offered), not
# absolute counts. Both sides are virtual-time-deterministic.
CHAOS_TOLERANCE=${CHAOS_TOLERANCE:-0.90}
has_chaos=$(python3 - <<'PY'
import json
rec = json.load(open("BENCH_disagg.json"))
serving = rec.get("serving") or {}
print(1 if serving.get("chaos") else 0)
PY
)
if [ "$has_chaos" = "1" ]; then
  echo "==> exp_driver --quick --only chaos_serve (goodput-under-chaos gate)" >&2
  ./target/release/exp_driver --quick --only chaos_serve --no-thru \
    --json bench_guard_chaos.json > /dev/null
  if python3 - "$CHAOS_TOLERANCE" <<'PY'
import json, sys
tol = float(sys.argv[1])
fresh = json.load(open("bench_guard_chaos.json"))["serving"]["chaos"]["rows"]
committed = json.load(open("BENCH_disagg.json"))["serving"]["chaos"]["rows"]

def fractions(rows):
    base = [r for r in rows if not r["controls"]]
    ctrl = [r for r in rows if r["controls"]]
    assert ctrl and base, "chaos sweep missing a variant"
    f = lambda rs: sum(r["goodput"] for r in rs) / sum(r["offered"] for r in rs)
    return f(base), f(ctrl)

fb, fc = fractions(fresh)
_, cc = fractions(committed)
ok = True
if fc <= fb:
    print(f"bench_guard: chaos goodput REGRESSED: controls fraction {fc:.3f} "
          f"no longer beats baseline {fb:.3f}", file=sys.stderr)
    ok = False
if fc < tol * cc:
    print(f"bench_guard: chaos goodput REGRESSED: fresh controls fraction "
          f"{fc:.3f} < {tol} x committed {cc:.3f}", file=sys.stderr)
    ok = False
if ok:
    print(f"bench_guard: chaos goodput OK: controls {fc:.3f} vs baseline "
          f"{fb:.3f} (committed {cc:.3f}, floor {tol}x)")
sys.exit(0 if ok else 1)
PY
  then :; else status=1; fi
  rm -f bench_guard_chaos.json
else
  echo "bench_guard: committed record has no serving.chaos section; skipping chaos gate" >&2
fi
exit $status
