#!/usr/bin/env bash
# Shard-invariance smoke: the driver's stress runs must report identical
# task and event counts at --shards 1 and --shards 4. Wall-clock and the
# rates derived from it are the only fields allowed to differ — sharding
# changes how the simulation is driven, never what it computes (the
# equivalence goldens pin the full trace; this checks the packaged
# binary end to end).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${EXP_DRIVER:-target/release/exp_driver}
if [ ! -x "$BIN" ]; then
  echo "==> cargo build --release --offline -p disagg-bench --bin exp_driver" >&2
  cargo build --release --offline -p disagg-bench --bin exp_driver >&2
  BIN=target/release/exp_driver
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BIN" --quick --thru-only --no-scaling --shards 1 --json "$tmp/s1.json" >/dev/null 2>&1
"$BIN" --quick --thru-only --no-scaling --shards 4 --json "$tmp/s4.json" >/dev/null 2>&1

python3 - "$tmp/s1.json" "$tmp/s4.json" <<'PY'
import json, sys
a = json.load(open(sys.argv[1]))["throughput"]
b = json.load(open(sys.argv[2]))["throughput"]
assert a and b, "throughput section is empty"
assert len(a) == len(b), f"row counts differ: {len(a)} vs {len(b)}"
for ra, rb in zip(a, b):
    for key in ("name", "tasks", "events"):
        assert ra[key] == rb[key], (
            f"{ra['name']}: {key} diverged between shard counts "
            f"({ra[key]} vs {rb[key]})"
        )
print(f"{len(a)} stress config(s) shard-invariant: tasks+events identical at 1 vs 4 shards")
PY
